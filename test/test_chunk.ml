(* The zero-copy chunk type and its plumbing: lifecycle faults, the
   QCheck ownership fuzzer, hostile chunk decoding, the gather-write
   framing, byte-metered flows, and refcount balance through a resil
   sink crash/replay. *)

open Eden_kernel
module Chunk = Eden_chunk.Chunk
module Bin = Eden_wire.Bin
module Frame = Eden_wire.Frame
module Obs = Eden_obs.Obs
module Flowctl = Eden_flowctl.Flowctl
module Stage = Eden_transput.Stage
module Retry = Eden_resil.Retry
module Backoff = Eden_resil.Backoff
module Rstage = Eden_resil.Rstage
module Rpipeline = Eden_resil.Rpipeline
module Supervisor = Eden_resil.Supervisor
module Pipeline = Eden_transput.Pipeline

let check = Alcotest.check

let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let gauges () = (Chunk.live_roots (), Chunk.live_bytes (), Chunk.live_views ())

let check_fault name fault f =
  match f () with
  | _ -> Alcotest.failf "%s: expected %s fault" name (Chunk.fault_name fault)
  | exception Chunk.Fault (got, _) ->
      check Alcotest.string name (Chunk.fault_name fault) (Chunk.fault_name got)

(* --- lifecycle ------------------------------------------------------ *)

let test_basics () =
  let c = Chunk.of_string "hello world" in
  check Alcotest.int "length" 11 (Chunk.length c);
  check Alcotest.string "to_string" "hello world" (Chunk.to_string c);
  check Alcotest.char "get" 'w' (Chunk.get c 6);
  check Alcotest.(option int) "index_from" (Some 5) (Chunk.index_from c 0 ' ');
  let z = Chunk.alloc 4 in
  check Alcotest.string "alloc zero-filled" "\000\000\000\000" (Chunk.to_string z);
  let s = Chunk.of_substring "abcdef" ~pos:2 ~len:3 in
  check Alcotest.string "of_substring" "cde" (Chunk.to_string s);
  let e = Chunk.empty () in
  check Alcotest.int "empty" 0 (Chunk.length e);
  List.iter Chunk.release [ c; z; s; e ]

let test_zero_copy () =
  let roots0 = Chunk.live_roots () in
  let c = Chunk.of_string "hello world" in
  check Alcotest.int "one root" (roots0 + 1) (Chunk.live_roots ());
  (* sub/split/concat never copy: no new roots, only views. *)
  let w = Chunk.sub c ~pos:6 ~len:5 in
  check Alcotest.string "sub" "world" (Chunk.to_string w);
  let a, b = Chunk.split c 5 in
  check Alcotest.string "split left" "hello" (Chunk.to_string a);
  check Alcotest.string "split right" " world" (Chunk.to_string b);
  let j = Chunk.concat [ a; w ] in
  check Alcotest.string "concat" "helloworld" (Chunk.to_string j);
  check Alcotest.int "concat chains segments" 2 (Chunk.segments j);
  check Alcotest.int "still one root" (roots0 + 1) (Chunk.live_roots ());
  let flat = Chunk.of_string "helloworld" in
  check Alcotest.bool "equal across shapes" true (Chunk.equal j flat);
  List.iter Chunk.release [ c; w; a; b; j; flat ]

let test_equal_segmented () =
  let l = Chunk.of_string "abc" and r = Chunk.of_string "def" in
  let j = Chunk.concat [ l; r ] in
  let flat = Chunk.of_string "abcdef" in
  check Alcotest.bool "equal segmented vs flat" true (Chunk.equal j flat);
  let head = Chunk.sub flat ~pos:0 ~len:5 in
  check Alcotest.bool "not equal" false (Chunk.equal j head);
  List.iter Chunk.release [ l; r; j; flat; head ]

let test_faults () =
  let c = Chunk.of_string "doomed" in
  Chunk.release c;
  check_fault "double release" Chunk.Double_release (fun () -> Chunk.release c);
  check_fault "use after free" Chunk.Use_after_free (fun () -> Chunk.to_string c);
  check_fault "sub after free" Chunk.Use_after_free (fun () -> Chunk.sub c ~pos:0 ~len:1);
  (* preview must stay safe on a released handle — it feeds error
     messages and observability. *)
  let p = Chunk.preview c in
  check Alcotest.bool "preview safe when released" true
    (String.length p > 0 && String.length p < 64);
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "preview names released" true (contains_sub p "released")

let test_gauge_balance () =
  let base = gauges () in
  let c = Chunk.of_string "0123456789" in
  let a, b = Chunk.split c 4 in
  let j = Chunk.concat [ b; a ] in
  let s = Chunk.sub j ~pos:2 ~len:6 in
  check Alcotest.bool "gauges rose" true (gauges () <> base);
  List.iter Chunk.release [ c; a; b; j; s ];
  check
    Alcotest.(triple int int int)
    "gauges balance to baseline" base (gauges ())

(* --- QCheck lifecycle fuzzer ---------------------------------------- *)

(* Random sub/split/concat/release sequences over a tracked pool of
   handles, plus deliberate double-releases and use-after-free pokes.
   The typed faults must fire exactly on the poisoned actions, and the
   gauges must return to baseline once every live handle is released. *)
let prop_lifecycle =
  prop "chunk lifecycle fuzzer: faults typed, gauges balance" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_bound 7) (int_bound 1000)))
    (fun ops ->
      let base = gauges () in
      let alive = ref [] in
      let dead = ref [] in
      let fresh_id = ref 0 in
      let pick xs r = List.nth xs (r mod List.length xs) in
      let ok = ref true in
      List.iter
        (fun (op, r) ->
          match op with
          | 0 | 1 ->
              incr fresh_id;
              alive := Chunk.of_string (Printf.sprintf "item-%04d-%d" !fresh_id r) :: !alive
          | 2 when !alive <> [] ->
              let c = pick !alive r in
              let len = Chunk.length c in
              if len > 0 then
                alive := Chunk.sub c ~pos:(r mod len) ~len:(1 + (r mod (len - (r mod len)))) :: !alive
          | 3 when !alive <> [] ->
              let c = pick !alive r in
              let a, b = Chunk.split c (r mod (Chunk.length c + 1)) in
              alive := a :: b :: !alive
          | 4 when !alive <> [] ->
              let a = pick !alive r and b = pick !alive (r / 7) in
              alive := Chunk.concat [ a; b ] :: !alive
          | 5 when !alive <> [] ->
              let c = pick !alive r in
              Chunk.release c;
              alive := List.filter (fun x -> x != c) !alive;
              dead := c :: !dead
          | 6 when !dead <> [] ->
              (* Double release must raise the typed fault, every time. *)
              let c = pick !dead r in
              (match Chunk.release c with
              | () -> ok := false
              | exception Chunk.Fault (Chunk.Double_release, _) -> ()
              | exception _ -> ok := false)
          | 7 when !dead <> [] ->
              (* Use-after-free likewise. *)
              let c = pick !dead r in
              (match Chunk.to_string c with
              | _ -> ok := false
              | exception Chunk.Fault (Chunk.Use_after_free, _) -> ()
              | exception _ -> ok := false)
          | _ -> ())
        ops;
      (* Exercise reads on the survivors, then drain the pool. *)
      List.iter (fun c -> ignore (Chunk.to_string c)) !alive;
      List.iter Chunk.release !alive;
      !ok && gauges () = base)

(* --- hostile decoding ----------------------------------------------- *)

let test_bin_roundtrip () =
  let base = gauges () in
  let c1 = Chunk.of_string "payload one" in
  let seg = Chunk.of_string "seg-a|" in
  let c2 = Chunk.concat [ seg ] in
  Chunk.release seg;
  let v =
    Value.List
      [ Value.Str "hdr"; Value.Chunk c1; Value.List [ Value.Chunk c2; Value.Int 7 ] ]
  in
  let enc = Bin.encode v in
  let back = Bin.decode enc in
  check Alcotest.bool "chunk value roundtrips" true (Value.equal v back);
  (* Size law: a chunk frames exactly like a string of the same bytes. *)
  let lone = Bin.encode (Value.Chunk c1) in
  check Alcotest.int "1 + 4 + len" (1 + 4 + Chunk.length c1) (String.length lone);
  (* Release both the originals and the decoded copies: balance. *)
  let rec dispose = function
    | Value.Chunk c -> Chunk.release c
    | Value.List vs -> List.iter dispose vs
    | _ -> ()
  in
  dispose v;
  dispose back;
  check Alcotest.(triple int int int) "balanced" base (gauges ())

let test_bin_hostile_chunk () =
  let reject name s =
    match Bin.decode s with
    | v -> Alcotest.failf "%s: decoded %s" name (Value.preview v)
    | exception Value.Protocol_error _ -> ()
  in
  (* Length overrunning the buffer must be rejected before allocation. *)
  reject "oversized length" "\x07\xff\xff\xff\x7fAB";
  reject "length past end" "\x07\x00\x00\x00\x09short";
  reject "truncated header" "\x07\x00\x00";
  (* 2^31-1-ish lengths encoded in the unsigned field: still bounded by
     the remaining-bytes check, no allocation attempt. *)
  reject "huge unsigned length" "\x07\xff\xff\xff\xff";
  (* Truncating a valid encoding anywhere inside the payload fails. *)
  let c = Chunk.of_string "0123456789" in
  let enc = Bin.encode (Value.Chunk c) in
  Chunk.release c;
  reject "truncated payload" (String.sub enc 0 (String.length enc - 3));
  (* Depth cap applies around chunks too: wrap one chunk in more list
     headers than the decoder allows. *)
  let depth = 210 in
  let b = Buffer.create 1024 in
  for _ = 1 to depth do
    Buffer.add_string b "\x06\x00\x00\x00\x01"
  done;
  Buffer.add_string b "\x07\x00\x00\x00\x01x";
  reject "depth cap" (Buffer.contents b)

let test_value_preview_bounded () =
  let c = Chunk.of_string (String.make 100_000 'x') in
  let p = Value.preview (Value.Chunk c) in
  check Alcotest.bool "preview bounded" true (String.length p < 256);
  Chunk.release c

(* --- gather framing -------------------------------------------------- *)

let flatten_parts ps =
  String.concat ""
    (List.map (function Bin.Flat s -> s | Bin.Payload c -> Chunk.to_string c) ps)

let test_parts_law () =
  let c1 = Chunk.of_string "alpha" and c2 = Chunk.of_string "beta" in
  let vals =
    [
      Value.Unit;
      Value.Str "plain";
      Value.Chunk c1;
      Value.List [ Value.Int 3; Value.Chunk c2; Value.Str "tail" ];
      Value.List [ Value.List [ Value.Chunk c1 ] ];
    ]
  in
  List.iter
    (fun v ->
      let ps = Bin.parts v in
      check Alcotest.string "parts flatten to encode" (Bin.encode v) (flatten_parts ps);
      check Alcotest.int "parts_length law" (String.length (Bin.encode v))
        (Bin.parts_length ps))
    vals;
  (* The chunk payloads must ride as references, not copies. *)
  let ps = Bin.parts (Value.List [ Value.Chunk c1; Value.Chunk c2 ]) in
  let payloads = List.filter (function Bin.Payload _ -> true | _ -> false) ps in
  check Alcotest.int "chunks stay as payload refs" 2 (List.length payloads);
  List.iter Chunk.release [ c1; c2 ]

let test_write_parts_wire_identical () =
  let c = Chunk.of_string (String.concat "\n" (List.init 40 (Printf.sprintf "line %d"))) in
  let v = Value.List [ Value.Str "envelope"; Value.Chunk c ] in
  let via_parts =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Frame.write_value a ~kind:Frame.Request ~src:3 ~dst:5 ~seq:42 v;
    let f = Frame.read b in
    Unix.close a;
    Unix.close b;
    f
  in
  let via_flat =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Frame.write a (Frame.make ~kind:Frame.Request ~src:3 ~dst:5 ~seq:42 (Bin.encode v));
    let f = Frame.read b in
    Unix.close a;
    Unix.close b;
    f
  in
  check Alcotest.bool "headers agree" true (via_parts.Frame.hdr = via_flat.Frame.hdr);
  check Alcotest.string "payload byte-identical" via_flat.Frame.payload
    via_parts.Frame.payload;
  check Alcotest.int "parts_size agrees with size" (Frame.size via_flat)
    (Frame.parts_size (Bin.parts v));
  Chunk.release c

(* --- flow meters ------------------------------------------------------ *)

let test_flow_meter_bytes () =
  (* Byte meters charge Value.size per item: a chunk counts its whole
     payload plus the 4-byte framing, same as a string. *)
  let items = [ Value.Str "abcd"; Value.chunk (Chunk.of_string "0123456789"); Value.Str "" ] in
  let expect = List.fold_left (fun a v -> a + Value.size v) 0 items in
  check Alcotest.int "size law str" (4 + 4) (Value.size (List.nth items 0));
  check Alcotest.int "size law chunk" (4 + 10) (Value.size (List.nth items 1));
  let k = Kernel.create () in
  let obs = Kernel.obs k in
  let src_flow = Obs.register_stage obs "m.source" in
  let sink_flow = Obs.register_stage obs "m.sink" in
  let rest = ref items in
  let gen () =
    match !rest with
    | [] -> None
    | v :: tl ->
        rest := tl;
        Some v
  in
  let src = Stage.source_ro k ~name:"m.source" ~flow:src_flow gen in
  let got = ref [] in
  let sink =
    Stage.sink_ro k ~name:"m.sink" ~flow:sink_flow ~upstream:src (fun v -> got := v :: !got)
  in
  Kernel.poke k sink;
  Kernel.run k;
  check Alcotest.int "sink items" 3 (List.length !got);
  check Alcotest.int "sink bytes_in = sum of sizes" expect sink_flow.Obs.Flow.bytes_in;
  check Alcotest.int "source bytes_out = sum of sizes" expect src_flow.Obs.Flow.bytes_out;
  check Alcotest.int "source bytes_in zero" 0 src_flow.Obs.Flow.bytes_in;
  List.iter (function Value.Chunk c -> Chunk.release c | _ -> ()) !got

let test_net_size_histogram_counts_chunks () =
  (* Chunk payloads land in the net.size histogram via Value.size — a
     1 KiB chunk moving across the simulated net must register at least
     its own bytes. *)
  let k = Kernel.create () in
  let payload = String.make 1024 'z' in
  let rest = ref [ Value.chunk (Chunk.of_string payload) ] in
  let gen () =
    match !rest with
    | [] -> None
    | v :: tl ->
        rest := tl;
        Some v
  in
  let src = Stage.source_ro k ~name:"h.source" gen in
  let sink =
    Stage.sink_ro k ~name:"h.sink" ~upstream:src (function
      | Value.Chunk c -> Chunk.release c
      | _ -> ())
  in
  Kernel.poke k sink;
  Kernel.run k;
  let m = Kernel.Meter.snapshot k in
  check Alcotest.bool "net bytes cover the chunk" true
    (m.Kernel.Meter.net.Eden_net.Net.bytes >= 1024)

(* --- flowctl config --------------------------------------------------- *)

let test_flowctl_chunked () =
  let f = Flowctl.chunked () in
  check Alcotest.bool "is_chunked" true (Flowctl.is_chunked f);
  check Alcotest.bool "never legacy" false (Flowctl.is_legacy f);
  check Alcotest.(option int) "chunk_bytes" (Some Flowctl.default_chunk_bytes)
    (Flowctl.chunk_bytes f);
  check Alcotest.int "initial batch 1" 1 (Flowctl.initial_batch f);
  let g = Flowctl.chunked ~chunk_bytes:512 () in
  check Alcotest.(option int) "custom bytes" (Some 512) (Flowctl.chunk_bytes g);
  check Alcotest.bool "boxed configs report no chunk_bytes" true
    (Flowctl.chunk_bytes (Flowctl.fixed 4) = None);
  match Flowctl.chunked ~chunk_bytes:0 () with
  | _ -> Alcotest.fail "chunk_bytes 0 accepted"
  | exception Invalid_argument _ -> ()

(* --- resil replay balance --------------------------------------------- *)

(* A chunked read-only resumable pipeline whose sink crashes mid-stream
   and replays from its checkpoint.  Replayed deliveries re-serve the
   same handles, the restarted fold discards none silently: after
   releasing the output exactly once, every refcount balances. *)
let test_resil_replay_balance () =
  let base = gauges () in
  let n = 24 in
  let line i = Printf.sprintf "resil-line-%03d  Quick brown  " i in
  let gen i = if i >= n then None else Some (Value.chunk (Chunk.of_string (line i))) in
  let upchunk v =
    match v with
    | Value.Chunk c ->
        let s = String.uppercase_ascii (Chunk.to_string c) in
        Chunk.release c;
        Value.chunk (Chunk.of_string s)
    | v -> v
  in
  let k = Kernel.create ~seed:5L ~nodes:[ "a"; "b"; "c" ] () in
  let policy =
    Retry.policy ~timeout:50.0 ~max_attempts:10 ~backoff:(Backoff.make ~base:1.0 ~cap:10.0 ()) ()
  in
  let p =
    Rpipeline.build k ~nodes:(Kernel.nodes k) ~batch:2 ~policy ~seed:99L Pipeline.Read_only
      ~gen ~filters:[ Rstage.pure_map upchunk ]
  in
  let sup = Supervisor.create k ~policy:(Supervisor.policy ~interval:4.0 ()) () in
  Rpipeline.supervise p sup;
  Supervisor.start sup;
  Rpipeline.crash_at p p.Rpipeline.sink 6.0;
  let completed = ref false in
  Kernel.run_driver k (fun _ctx ->
      Rpipeline.start p;
      completed := Rpipeline.await_timeout p ~deadline:5000.0;
      Supervisor.stop sup);
  check Alcotest.bool "completes through the crash" true !completed;
  (match Rpipeline.output p with
  | None -> Alcotest.fail "no output"
  | Some vs ->
      let texts =
        List.map
          (function
            | Value.Chunk c ->
                let s = Chunk.to_string c in
                Chunk.release c;
                s
            | v -> Value.to_str v)
          vs
      in
      let expected = List.init n (fun i -> String.uppercase_ascii (line i)) in
      check Alcotest.(list string) "byte-identical stream after replay" expected texts;
      check Alcotest.int "chunks stayed chunks" n
        (List.length (List.filter (function Value.Chunk _ -> true | _ -> false) vs)));
  check Alcotest.(triple int int int) "refcounts balance through replay" base (gauges ())

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "zero-copy sub/split/concat" `Quick test_zero_copy;
    Alcotest.test_case "equal across segmentations" `Quick test_equal_segmented;
    Alcotest.test_case "typed faults" `Quick test_faults;
    Alcotest.test_case "gauge balance" `Quick test_gauge_balance;
    prop_lifecycle;
    Alcotest.test_case "bin roundtrip + size law" `Quick test_bin_roundtrip;
    Alcotest.test_case "bin hostile chunk lengths" `Quick test_bin_hostile_chunk;
    Alcotest.test_case "value preview bounded" `Quick test_value_preview_bounded;
    Alcotest.test_case "gather parts law" `Quick test_parts_law;
    Alcotest.test_case "write_parts wire-identical" `Quick test_write_parts_wire_identical;
    Alcotest.test_case "flow meters count bytes" `Quick test_flow_meter_bytes;
    Alcotest.test_case "net.size sees chunk bytes" `Quick test_net_size_histogram_counts_chunks;
    Alcotest.test_case "flowctl chunked config" `Quick test_flowctl_chunked;
    Alcotest.test_case "resil replay refcount balance" `Quick test_resil_replay_balance;
  ]
