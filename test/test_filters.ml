(* The filter catalog, pure (Line.run) and through real pipelines. *)

module Cat = Eden_filters.Catalog
module Line = Eden_filters.Line
module Report = Eden_filters.Report
open Eden_kernel
module T = Eden_transput

let check = Alcotest.check
let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let lines_t = Alcotest.(list string)

let test_strip_comments () =
  check lines_t "fortran"
    [ "      REAL X"; "      X = 1" ]
    (Line.run (Cat.strip_comments ()) [ "C a comment"; "      REAL X"; "C more"; "      X = 1" ]);
  check lines_t "custom prefix" [ "code" ] (Line.run (Cat.strip_comments ~prefix:"#" ()) [ "# c"; "code" ])

let test_grep () =
  check lines_t "grep" [ "abc"; "cab" ] (Line.run (Cat.grep "ab") [ "abc"; "xyz"; "cab" ]);
  check lines_t "grep_v" [ "xyz" ] (Line.run (Cat.grep_v "ab") [ "abc"; "xyz"; "cab" ])

let test_case_filters () =
  check lines_t "upcase" [ "AB" ] (Line.run Cat.upcase [ "aB" ]);
  check lines_t "downcase" [ "ab" ] (Line.run Cat.downcase [ "aB" ])

let test_rot13_involution () =
  check lines_t "rot13" [ "Uryyb, Jbeyq!" ] (Line.run Cat.rot13 [ "Hello, World!" ]);
  check lines_t "applied twice" [ "Hello" ] (Line.run Cat.rot13 (Line.run Cat.rot13 [ "Hello" ]))

let test_translate () =
  check lines_t "tr" [ "bcd" ] (Line.run (Cat.translate ~from:"abc" ~into:"bcd") [ "abc" ]);
  Alcotest.(check bool) "length mismatch" true
    (try
       let _ : T.Transform.t = Cat.translate ~from:"ab" ~into:"a" in
       false
     with Invalid_argument _ -> true)

let test_number_lines () =
  check lines_t "numbers"
    [ "   1  a"; "   2  b" ]
    (Line.run (Cat.number_lines ()) [ "a"; "b" ]);
  check lines_t "custom start/width" [ " 9  x"; "10  y" ]
    (Line.run (Cat.number_lines ~start:9 ~width:2 ()) [ "x"; "y" ])

let test_head_tail () =
  let input = [ "1"; "2"; "3"; "4"; "5" ] in
  check lines_t "head" [ "1"; "2" ] (Line.run (Cat.head 2) input);
  check lines_t "tail" [ "4"; "5" ] (Line.run (Cat.tail 2) input);
  check lines_t "tail short input" input (Line.run (Cat.tail 10) input)

let test_paginate () =
  let out = Line.run (Cat.paginate ~lines_per_page:2 ~title:"doc" ()) [ "a"; "b"; "c" ] in
  check lines_t "pages"
    [ "==== doc page 1 ===="; "a"; "b"; "==== doc page 2 ===="; "c" ]
    out

let test_paginate_invalid () =
  Alcotest.(check bool) "zero page" true
    (try
       let _ : T.Transform.t = Cat.paginate ~lines_per_page:0 () in
       false
     with Invalid_argument _ -> true)

let test_word_count () =
  check lines_t "wc" [ "2 5 24" ] (Line.run Cat.word_count [ "hello world foo"; "bar baz" ])

let test_sort_uniq_tac () =
  check lines_t "sort" [ "a"; "b"; "c" ] (Line.run Cat.sort_lines [ "c"; "a"; "b" ]);
  check lines_t "uniq" [ "a"; "b"; "a" ] (Line.run Cat.uniq [ "a"; "a"; "b"; "b"; "b"; "a" ]);
  check lines_t "tac" [ "c"; "b"; "a" ] (Line.run Cat.reverse_lines [ "a"; "b"; "c" ])

let test_squeeze_trim_expand () =
  check lines_t "squeeze" [ "a"; ""; "b" ] (Line.run Cat.squeeze_blank [ "a"; ""; ""; "  "; "b" ]);
  check lines_t "trim" [ "a"; "b" ] (Line.run Cat.trim_trailing [ "a   "; "b\t" ]);
  check lines_t "expand" [ "ab  x" ] (Line.run (Cat.expand_tabs ~tabstop:4 ()) [ "ab\tx" ])

let test_cut () =
  check lines_t "field 2" [ "b"; "y" ] (Line.run (Cat.cut ~delim:':' ~field:2) [ "a:b:c"; "x:y" ]);
  check lines_t "missing field" [ "" ] (Line.run (Cat.cut ~delim:':' ~field:5) [ "a:b" ])

let test_spell () =
  let dictionary = [ "the"; "cat"; "sat"; "on"; "mat" ] in
  check lines_t "misspellings" [ "teh"; "matt" ]
    (Line.run (Cat.spell ~dictionary) [ "the cat"; "teh sat on"; "matt" ])

let test_by_name () =
  (match Cat.by_name "grep" [ "x" ] with
  | Ok tr -> check lines_t "by_name grep" [ "x1" ] (Line.run tr [ "x1"; "y1" ])
  | Error e -> Alcotest.fail e);
  (match Cat.by_name "head" [ "notanint" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "head should reject garbage");
  (match Cat.by_name "frobnicate" [] with
  | Error msg -> Alcotest.(check bool) "names the filter" true (Eden_util.Text.contains_sub ~sub:"frobnicate" msg)
  | Ok _ -> Alcotest.fail "unknown name accepted");
  List.iter
    (fun name ->
      match Cat.by_name name [ "1" ] with
      | Ok _ | Error _ -> ())
    Cat.names

let prop_catalog_composes_in_pipeline =
  (* Any pair of catalog filters gives the same result through a real
     read-only pipeline as pure in-process application. *)
  let safe = [| Cat.upcase; Cat.rot13; Cat.uniq; Cat.sort_lines; Cat.trim_trailing |] in
  let line = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 5)) in
  prop ~count:30 "pipeline composition = pure composition"
    QCheck2.Gen.(triple (int_bound 4) (int_bound 4) (small_list line))
    (fun (i, j, lines) ->
      let f1 = safe.(i) and f2 = safe.(j) in
      let k = Kernel.create () in
      let acc = ref [] in
      let p =
        T.Pipeline.build k T.Pipeline.Read_only
          ~gen:
            (let rest = ref lines in
             fun () ->
               match !rest with
               | [] -> None
               | x :: tl ->
                   rest := tl;
                   Some (Value.Str x))
          ~filters:[ f1; f2 ]
          ~consume:(fun v -> acc := Value.to_str v :: !acc)
      in
      Kernel.run_driver k (fun _ -> T.Pipeline.run p);
      List.rev !acc = Line.run f2 (Line.run f1 lines))

(* --- report streams -------------------------------------------------- *)

let test_with_progress_reports () =
  let tr = Report.with_progress ~every:2 ~label:"job" T.Transform.identity in
  let input = List.map (fun s -> Value.Str s) [ "a"; "b"; "c" ] in
  let outs = ref [] and reps = ref [] in
  let next =
    let rest = ref input in
    fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x
  in
  tr next (fun v -> outs := v :: !outs) (fun v -> reps := v :: !reps);
  check lines_t "main untouched" [ "a"; "b"; "c" ] (List.map Value.to_str (List.rev !outs));
  check lines_t "progress + final"
    [ "job: 2 items"; "job: done, 3 items" ]
    (List.map Value.to_str (List.rev !reps))

let test_reporting_filter_ro_two_channels () =
  let k = Kernel.create () in
  let src = Eden_devices.Devices.text_source k [ "x"; "y"; "z" ] in
  let f =
    Report.filter_ro k ~upstream:src (Report.with_progress ~every:1 ~label:"f" Cat.upcase)
  in
  let data = ref [] and reports = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pd = T.Pull.connect ctx ~channel:T.Channel.output f in
      T.Pull.iter (fun v -> data := Value.to_str v :: !data) pd;
      let pr = T.Pull.connect ctx ~channel:T.Channel.report f in
      T.Pull.iter (fun v -> reports := Value.to_str v :: !reports) pr);
  check lines_t "main" [ "X"; "Y"; "Z" ] (List.rev !data);
  check Alcotest.int "reports: 3 progress + 1 final" 4 (List.length !reports)

let suite =
  [
    ("strip comments", `Quick, test_strip_comments);
    ("grep", `Quick, test_grep);
    ("case filters", `Quick, test_case_filters);
    ("rot13 involution", `Quick, test_rot13_involution);
    ("translate", `Quick, test_translate);
    ("number lines", `Quick, test_number_lines);
    ("head/tail", `Quick, test_head_tail);
    ("paginate", `Quick, test_paginate);
    ("paginate invalid", `Quick, test_paginate_invalid);
    ("word count", `Quick, test_word_count);
    ("sort/uniq/tac", `Quick, test_sort_uniq_tac);
    ("squeeze/trim/expand", `Quick, test_squeeze_trim_expand);
    ("cut", `Quick, test_cut);
    ("spell", `Quick, test_spell);
    ("by_name registry", `Quick, test_by_name);
    ("with_progress reports", `Quick, test_with_progress_reports);
    ("reporting filter serves two channels", `Quick, test_reporting_filter_ro_two_channels);
    prop_catalog_composes_in_pipeline;
  ]
