(* Multi-tenant capability namespaces: the adversarial battery.

   A malicious Eject probes a sibling tenant's protected sources with
   every attack class the registry meters — forged channel ids, stolen
   capabilities, replayed seq-stamped Transfers, credit hoards — under
   both the deterministic kernel and the authenticated wire (forked
   shard processes, RFC-0002 three-layer handshake).  Each attack must
   be refused and charged to the right namespace while the victim's
   stream completes byte-identical to its unattacked oracle run.

   Also here: the revoke x drain x crash exploration suite with the
   revoke-skips-reclaim calibration mutant, the QCheck delegation-tree
   balance property, and MAC/handshake fuzzing. *)

module Check = Eden_check.Check
module Policy = Eden_check.Policy
module Sched = Eden_sched.Sched
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Prng = Eden_util.Prng
module Channel = Eden_transput.Channel
module Proto = Eden_transput.Proto
module Stage = Eden_transput.Stage
module Pull = Eden_transput.Pull
module Flowctl = Eden_flowctl.Flowctl
module Credit = Eden_flowctl.Credit
module Aimd = Eden_flowctl.Aimd
module Tenant = Eden_tenant.Tenant
module Auth = Eden_wire.Auth
module Frame = Eden_wire.Frame
module Transport = Eden_wire.Transport
module Bin = Eden_wire.Bin
module Cluster = Eden_par.Cluster
module Elastic = Eden_elastic.Elastic
module Rpush = Eden_resil.Rpush
module Obs = Eden_obs.Obs

let check = Alcotest.check
let replay_dir = "_check"

let list_gen items =
  let r = ref items in
  fun () ->
    match !r with
    | [] -> None
    | v :: tl ->
        r := tl;
        Some v

let items n = List.init n (fun i -> Value.Str (Printf.sprintf "item-%03d" i))
let bytes_of vs = String.concat "" (List.map Bin.encode vs)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_err name = function
  | Ok _ -> Alcotest.failf "%s: attack was admitted" name
  | Error _ -> ()

let community_id = 0xEDE11L
let community () = Auth.community ~id:community_id ~key:"0123456789abcdef"

(* --- Unit: the keyed-MAC layer ---------------------------------------- *)

(* Reference vectors from the SipHash-2-4 paper (key bytes 00..0f). *)
let test_siphash_vectors () =
  let key = String.init 16 Char.chr in
  check Alcotest.int64 "empty input" 0x726fdb47dd0e0e31L (Auth.siphash ~key "");
  check Alcotest.int64 "one byte" 0x74f839c593dc67fdL (Auth.siphash ~key "\x00");
  check Alcotest.int64 "two bytes" 0x0d6c8009d9a94f5aL (Auth.siphash ~key "\x00\x01")

let test_auth_handshake_roundtrip () =
  let c = community () in
  let lookup id = if Int64.equal id community_id then Some c else None in
  let hello = Auth.hello c ~shard:2 ~nonce:42L in
  (match Auth.verify_hello ~lookup hello with
  | Error e -> Alcotest.failf "hello rejected: %s" e
  | Ok (shard, nonce, _) ->
      check Alcotest.int "shard echoed" 2 shard;
      check Alcotest.int64 "nonce echoed" 42L nonce);
  let token = Auth.mint_token c ~shard:2 ~nonce:42L in
  let welcome = Auth.welcome c ~shard:2 ~nonce:42L ~token in
  (match Auth.verify_welcome c ~expect_nonce:42L welcome with
  | Error e -> Alcotest.failf "welcome rejected: %s" e
  | Ok t -> check Alcotest.int64 "session token" token t);
  (* A welcome captured from another connection fails the nonce echo. *)
  (match Auth.verify_welcome c ~expect_nonce:43L welcome with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "captured welcome accepted");
  (* Same community id, different key: the MAC must not verify. *)
  let imposter = Auth.community ~id:community_id ~key:"fedcba9876543210" in
  match Auth.verify_hello ~lookup:(fun _ -> Some imposter) hello with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hello verified under the wrong key"

let test_auth_seal_open_replay () =
  let c = community () in
  let tx = Auth.session c ~token:7L in
  let rx = Auth.session c ~token:7L in
  let f = Frame.make ~kind:Frame.Request ~src:1 ~dst:0 ~seq:5 "payload" in
  let sealed = Auth.seal tx f in
  let opened = Auth.open_ rx sealed in
  check Alcotest.string "payload survives seal/open" "payload" opened.Frame.payload;
  match Auth.open_ rx sealed with
  | exception Value.Protocol_error msg ->
      Alcotest.(check bool) "refusal names the replay" true (contains msg "replay")
  | _ -> Alcotest.fail "replayed sealed frame accepted"

let test_credit_revoke () =
  let w = Credit.create (Credit.Window 4) in
  Alcotest.(check bool) "take" true (Credit.take w);
  Alcotest.(check bool) "take" true (Credit.take w);
  check Alcotest.int "revoke reclaims in-flight" 2 (Credit.revoke w);
  Alcotest.(check bool) "revoked" true (Credit.revoked w);
  Alcotest.(check bool) "take refused after revoke" false (Credit.take w);
  Credit.give w;
  check Alcotest.int "give is a no-op after revoke" 0 (Credit.in_flight w);
  check Alcotest.int "second revoke reclaims nothing" 0 (Credit.revoke w)

(* --- The adversarial battery ------------------------------------------ *)

(* The victim's stream with no registry and no attacker: the oracle the
   attacked runs must match byte for byte. *)
let oracle_run n ~seed =
  let k = Kernel.create ~seed () in
  let src = Stage.source_ro k ~capacity:0 (list_gen (items n)) in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull =
        Pull.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 2) 4) src
      in
      Pull.iter (fun v -> got := v :: !got) pull);
  List.rev !got

(* Attacks 1-6 probe the victim's main source; the replay pair runs
   against a second protected source, because a replay needs a
   first, legitimately admitted seq-stamped Transfer — and the victim's
   own windowed stream must stay untouched by it. *)
let test_adversary_det () =
  let n = 24 in
  let oracle = oracle_run n ~seed:11L in
  let k = Kernel.create ~seed:11L () in
  let src1 = Stage.source_ro k ~capacity:0 (list_gen (items n)) in
  let src2 = Stage.source_ro k ~capacity:0 (list_gen (items 4)) in
  let reg = Tenant.install ~hoard_quota:8 k in
  let alice = Tenant.tenant reg "alice" in
  let mallory = Tenant.tenant reg "mallory" in
  Tenant.protect reg ~owner:alice src1;
  Tenant.protect reg ~owner:alice src2;
  let cap = Tenant.grant reg alice ~rights:Tenant.Read ~underlying:Channel.output src1 in
  let cap_r = Tenant.grant reg alice ~rights:Tenant.Read ~underlying:Channel.output src2 in
  let wcap = Tenant.grant reg alice ~rights:Tenant.Write ~underlying:Channel.output src1 in
  let mcap = Tenant.grant reg mallory ~rights:Tenant.Read ~underlying:Channel.output src1 in
  let gen = Uid.generator ~seed:0xBAD0L in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let attack name dst v = expect_err name (Kernel.invoke ctx dst ~op:Proto.transfer_op v) in
      (* Forged ids: the paper's small-integer hole, a guessed capability
         UID, and a malformed request — all charged to the owner. *)
      attack "forged int channel" src1 (Proto.transfer_request (Channel.Num 0) ~credit:1);
      attack "guessed cap uid" src1
        (Proto.transfer_request (Channel.Cap (Uid.fresh gen)) ~credit:1);
      attack "malformed request" src1 (Value.Str "gibberish");
      (* Stolen channel: a real capability id naked, under a forged
         session token, and through the wrong right. *)
      attack "stolen channel, no token" src1
        (Proto.transfer_request (Tenant.channel cap) ~credit:1);
      attack "stolen channel, forged token" src1
        (Value.List
           [ Value.Str "eden.auth"; Value.Uid (Uid.fresh gen);
             Proto.transfer_request (Tenant.channel cap) ~credit:1 ]);
      attack "transfer through a write cap" src1
        (Tenant.wrap wcap (Proto.transfer_request (Tenant.channel wcap) ~credit:1));
      (* A guard refusal replies without ever activating the victim. *)
      Alcotest.(check bool) "refused probes never activate the victim" false
        (Kernel.is_active k src1);
      (* Replay: admit a seq-stamped Transfer once, present it again. *)
      let stale =
        Tenant.wrap cap_r (Proto.transfer_request ~seq:0 (Tenant.channel cap_r) ~credit:2)
      in
      (match Kernel.invoke ctx src2 ~op:Proto.transfer_op stale with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "legitimate seq transfer refused: %s" e);
      attack "replayed Transfer" src2 stale;
      (* Hoard: mallory asks for more outstanding credit than the quota
         allows, trying to starve the window pool. *)
      attack "credit hoard" src1
        (Tenant.wrap mcap (Proto.transfer_request (Tenant.channel mcap) ~credit:9));
      (* The victim's stream, windowed, through its own capability. *)
      let pull = Tenant.pull ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 2) 4) cap in
      Pull.iter (fun v -> got := v :: !got) pull;
      (* Stale-holder use after revocation: refused, counted apart from
         the four attack classes. *)
      Tenant.revoke reg cap_r;
      attack "use after revoke" src2
        (Tenant.wrap cap_r (Proto.transfer_request ~seq:1 (Tenant.channel cap_r) ~credit:1)));
  check Alcotest.string "victim stream byte-identical to oracle" (bytes_of oracle)
    (bytes_of (List.rev !got));
  let v t c = Tenant.violation_count reg t c in
  check Alcotest.int "alice: forged ids" 3 (v alice Tenant.Forged_id);
  check Alcotest.int "alice: stolen channels" 3 (v alice Tenant.Stolen_channel);
  check Alcotest.int "alice: replayed transfers" 1 (v alice Tenant.Replayed_transfer);
  check Alcotest.int "alice: no hoard charged to the victim" 0 (v alice Tenant.Credit_hoard);
  check Alcotest.int "mallory: hoard names the offender" 1 (v mallory Tenant.Credit_hoard);
  check Alcotest.int "mallory: otherwise clean" 0
    (v mallory Tenant.Forged_id + v mallory Tenant.Stolen_channel
    + v mallory Tenant.Replayed_transfer);
  check Alcotest.int "alice: revoked use counted apart" 1 (Tenant.revoked_uses reg alice);
  check Alcotest.int "alice: outstanding credit drained" 0 (Tenant.outstanding_credit reg alice);
  check Alcotest.int "mallory: outstanding credit drained" 0
    (Tenant.outstanding_credit reg mallory);
  check Alcotest.int "alice: live caps (3 granted - 1 revoked)" 2 (Tenant.live_caps reg alice);
  check Alcotest.int "mallory: live caps" 1 (Tenant.live_caps reg mallory);
  check Alcotest.int "cap_r's admitted credit was reclaimed at reply time, not revoke" 0
    (Tenant.credits_reclaimed reg alice);
  (* The credits gauge's high-water mark: at most window x batch. *)
  (match
     List.find_opt
       (fun s -> s.Obs.Flow.label = "tenant.alice.credits")
       (Obs.stages (Kernel.obs k))
   with
  | None -> Alcotest.fail "credits gauge not registered"
  | Some s ->
      Alcotest.(check bool) "peak outstanding within window x batch" true
        (s.Obs.Flow.max_occupancy >= 4 && s.Obs.Flow.max_occupancy <= 8));
  (* The shell surfaces the same meters without knowing the registry. *)
  let lines = Eden_shell.Shell.render_tenants k in
  Alcotest.(check bool) "shell renders per-tenant meters" true
    (List.exists (fun l -> contains l "tenant alice:" && contains l "forged_id=3") lines
    && List.exists (fun l -> contains l "tenant mallory:" && contains l "credit_hoard=1") lines)

(* Same battery across real OS processes: the registry is installed on
   the leaf shard before the fork, the attacker drives from the hub
   through proxies, and every frame rides the authenticated transport
   (three-layer handshake, per-connection session MACs).  Revocation is
   exercised only in the deterministic battery: a hub-side revoke
   cannot reach a forked leaf's registry copy. *)
let test_adversary_wire () =
  let n = 24 in
  let oracle = oracle_run n ~seed:11L in
  let c =
    Cluster.create ~seed:11L
      (Cluster.Wire
         { Cluster.wire_transport = Transport.Unix_socket;
           wire_faults = None;
           wire_auth = Some (community ()) })
      ~shards:2 ()
  in
  let k1 = Cluster.kernel c 1 in
  let src1 = Stage.source_ro k1 ~capacity:0 (list_gen (items n)) in
  let src2 = Stage.source_ro k1 ~capacity:0 (list_gen (items 4)) in
  let reg = Tenant.install ~hoard_quota:8 k1 in
  let alice = Tenant.tenant reg "alice" in
  let mallory = Tenant.tenant reg "mallory" in
  Tenant.protect reg ~owner:alice src1;
  Tenant.protect reg ~owner:alice src2;
  let cap = Tenant.grant reg alice ~rights:Tenant.Read ~underlying:Channel.output src1 in
  let cap_r = Tenant.grant reg alice ~rights:Tenant.Read ~underlying:Channel.output src2 in
  let mcap = Tenant.grant reg mallory ~rights:Tenant.Read ~underlying:Channel.output src1 in
  let p1 = Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ] ~target:(1, src1) in
  let p2 = Cluster.proxy c ~shard:0 ~ops:[ Proto.transfer_op ] ~target:(1, src2) in
  let gen = Uid.generator ~seed:0xBAD0L in
  let got = ref [] in
  Cluster.driver c 0 (fun ctx ->
      let attack name dst v = expect_err name (Kernel.invoke ctx dst ~op:Proto.transfer_op v) in
      attack "forged int channel" p1 (Proto.transfer_request (Channel.Num 0) ~credit:1);
      attack "guessed cap uid" p1
        (Proto.transfer_request (Channel.Cap (Uid.fresh gen)) ~credit:1);
      attack "stolen channel, no token" p1
        (Proto.transfer_request (Tenant.channel cap) ~credit:1);
      let stale =
        Tenant.wrap cap_r (Proto.transfer_request ~seq:0 (Tenant.channel cap_r) ~credit:2)
      in
      (match Kernel.invoke ctx p2 ~op:Proto.transfer_op stale with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "legitimate seq transfer refused over the wire: %s" e);
      attack "replayed Transfer" p2 stale;
      attack "credit hoard" p1
        (Tenant.wrap mcap (Proto.transfer_request (Tenant.channel mcap) ~credit:9));
      let pull =
        Pull.connect ctx
          ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 2) 4)
          ~channel:(Tenant.channel cap) ~wrap:(Tenant.wrap cap) p1
      in
      Pull.iter (fun v -> got := v :: !got) pull);
  Cluster.run c;
  check Alcotest.string "victim stream byte-identical over the authenticated wire"
    (bytes_of oracle)
    (bytes_of (List.rev !got));
  (* Meters aggregated from the leaf process's shutdown report. *)
  let flow label =
    match List.find_opt (fun (l, _, _) -> l = label) (Cluster.flows c) with
    | Some (_, items_in, _) -> items_in
    | None -> 0
  in
  check Alcotest.int "alice: forged ids over the wire" 2 (flow "tenant.alice.forged_id");
  check Alcotest.int "alice: stolen channels" 1 (flow "tenant.alice.stolen_channel");
  check Alcotest.int "alice: replayed transfers" 1 (flow "tenant.alice.replayed_transfer");
  check Alcotest.int "alice: no hoard" 0 (flow "tenant.alice.credit_hoard");
  check Alcotest.int "mallory: hoard names the offender" 1 (flow "tenant.mallory.credit_hoard")

(* --- Exploration: revoke x drain x crash ------------------------------ *)

(* The elastic workload from test_elastic, kept local: partitioned
   running sums, where any lost or duplicated item shifts every later
   output of its channel. *)
let nchan = 3
let classify v = Value.to_int v mod nchan

let spec =
  {
    Elastic.init = Value.Int 0;
    step =
      (fun st v ->
        let s = Value.to_int st + Value.to_int v in
        (Value.Int s, [ Value.Int s ]));
  }

let expected_outputs n =
  let sums = Array.make nchan 0 in
  let outs = Array.make nchan [] in
  for i = 0 to n - 1 do
    let c = i mod nchan in
    sums.(c) <- sums.(c) + i;
    outs.(c) <- Value.Int sums.(c) :: outs.(c)
  done;
  List.init nchan (fun c -> (c, List.rev outs.(c))) |> List.filter (fun (_, l) -> l <> [])

let fixed_ctrl n =
  Aimd.params ~min_batch:n ~max_batch:n ~increase:1 ~decrease:0.5 ~low_watermark:0.25
    ~high_watermark:0.75 ()

(* One decide-driven run over a kernel hosting both an elastic fleet
   (crash and fenced-drain surface) and a tenant-guarded windowed pull
   (revocation surface).  The schedule picks a replica-crash point, a
   drain point and a revocation point in item-index units; pick 0 = no
   event, so FIFO is the attack- and fault-free baseline.  Asserts: the
   fleet stays exactly-once, the victim stream is a prefix of its
   oracle (the whole oracle when no revocation fired), a revocation
   kills the bound credit window and reclaims every credit, and the
   run completes. *)
let tenant_prop ?defect ctl =
  let n = 12 in
  let m = 16 in
  let k = Kernel.create ~seed:2L () in
  Check.attach ctl (Kernel.sched k);
  let reg = Tenant.install ?defect k in
  let alice = Tenant.tenant reg "alice" in
  let src = Stage.source_ro k ~capacity:0 (list_gen (items m)) in
  Tenant.protect reg ~owner:alice src;
  let cap = Tenant.grant reg alice ~rights:Tenant.Read ~underlying:Channel.output src in
  let e =
    Elastic.create k ~classify ~spec
      (Elastic.params ~tick:1.0 ~checkpoint_every:3 ~auto:false ~ctrl:(fixed_ctrl 2) ())
  in
  (* Decision order matters for DFS, which varies the deepest recorded
     pick first: the revocation point — the decision the calibration
     mutant hinges on — is decided last so bounded DFS reaches it
     early. *)
  let crash_at = Check.decide ctl ~kind:"tenant.crash_at" ~n:(n + 1) in
  let drain_at = Check.decide ctl ~kind:"tenant.drain_at" ~n:(n + 1) in
  let revoke_at = Check.decide ctl ~kind:"tenant.revoke_at" ~n:(n + 1) in
  Elastic.start e;
  let completed = ref false in
  let got = ref [] in
  let pull_err = ref None in
  let window = ref None in
  Kernel.run_driver k (fun ctx ->
      let push = Rpush.connect ctx ~batch:1 ~prng:(Prng.create 77L) (Elastic.router e) in
      let pull = Tenant.pull ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 2) 2) cap in
      window := Pull.credit pull;
      let pull_done = ref false in
      let read_one () =
        if not !pull_done then
          match Pull.read pull with
          | Some v -> got := v :: !got
          | None -> pull_done := true
          | exception Kernel.Eden_error msg ->
              pull_done := true;
              pull_err := Some msg
      in
      for i = 0 to n - 1 do
        if i + 1 = crash_at then begin
          (match Elastic.replica_uids e with
          | (_, uid) :: _ -> Kernel.crash k uid
          | [] -> ());
          Sched.note (Kernel.sched k) ~kind:"tenant.crash" ~arg:i
        end;
        if i + 1 = drain_at then ignore (Elastic.drain_one ctx e);
        if i + 1 = revoke_at then Tenant.revoke reg cap;
        Rpush.write push (Value.Int i);
        Rpush.flush push;
        read_one ()
      done;
      while not !pull_done do
        read_one ()
      done;
      Rpush.close push;
      completed := Elastic.await_timeout e ~timeout:3000.0;
      Elastic.stop e);
  Sched.check_failures (Kernel.sched k);
  if not !completed then failwith "elastic run wedged";
  (match Elastic.violations e with
  | [] -> ()
  | v :: _ -> failwith ("violation: " ^ v));
  if Elastic.outputs e <> expected_outputs n then failwith "elastic outputs diverged";
  let got = List.rev !got in
  let oracle = items m in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> Value.equal x y && is_prefix a' b'
    | _ :: _, [] -> false
  in
  if revoke_at = 0 then begin
    (match !pull_err with
    | Some e -> failwith ("pull errored without a revocation: " ^ e)
    | None -> ());
    if got <> oracle then failwith "victim stream diverged"
  end
  else begin
    if not (is_prefix got oracle) then failwith "revoked stream is not an oracle prefix";
    if not (Tenant.is_revoked cap) then failwith "cap not revoked";
    match !window with
    | None -> failwith "windowed pull exposed no credit window"
    | Some w ->
        if not (Credit.revoked w) then failwith "revocation leaked the bound credit window";
        if Credit.in_flight w <> 0 then failwith "in-flight credits survived revocation"
  end;
  if Tenant.outstanding_credit reg alice <> 0 then failwith "outstanding credit leaked"

let test_exploration_real_impl policy () =
  ignore
    (Check.run_or_fail ~budget:40 ~policy ~seed:Seed.base ~replay_dir
       ~name:("tenant-" ^ Policy.to_string policy)
       (tenant_prop ?defect:None))

(* Calibration mutant: a revocation that forgets to reclaim — the
   subtree is marked revoked (the guard refuses further use) but bound
   client windows stay alive with their in-flight count stuck and the
   outstanding gauge never drains.  FIFO never revokes (pick 0), so it
   hides; any schedule that picks a revocation point exposes it. *)
let test_mutant_hides_under_fifo () =
  Alcotest.(check bool) "real impl passes FIFO" true
    (Check.fifo_passes (tenant_prop ?defect:None));
  Alcotest.(check bool) "mutant benign under FIFO" true
    (Check.fifo_passes (tenant_prop ~defect:Tenant.Revoke_skips_reclaim))

(* Fit bounded DFS to the decide prefix (3 picks, 13-way), exactly as
   the elastic suite does: the scheduler tail runs FIFO, and the
   explorer enumerates fault points instead of burning its budget in
   the binary run-queue subtree. *)
let tune_for_decides = function
  | Policy.Dfs _ -> Policy.Dfs { max_branch = 13; max_steps = 3 }
  | p -> p

let test_mutant_found policy () =
  let policy = tune_for_decides policy in
  let f =
    Check.find_bug ~budget:32 ~policy ~seed:Seed.base ~replay_dir
      ~name:("tenant-mutant-" ^ Policy.to_string policy)
      (tenant_prop ~defect:Tenant.Revoke_skips_reclaim)
  in
  Alcotest.(check bool) "caught within 32 schedules" true (f.Check.schedules <= 32);
  match f.Check.replay_path with
  | None -> Alcotest.fail "no replay file written"
  | Some path ->
      let r = Check.replay ~path (tenant_prop ~defect:Tenant.Revoke_skips_reclaim) in
      Alcotest.(check bool) "replay reproduces" true r.Check.reproduced;
      let ok = Check.replay ~path (tenant_prop ?defect:None) in
      Alcotest.(check bool) "correct impl survives the same schedule" true
        (not ok.Check.reproduced)

(* --- QCheck: delegation trees ----------------------------------------- *)

(* Build a random delegation tree over one root capability, revoke a
   random node, and check the registry against the model: exactly the
   node's subtree is revoked, a revoked capability cannot be extended,
   revocation is idempotent, and the live-caps gauge balances. *)
let prop_delegation_revoke =
  Seed.to_alcotest
    (QCheck2.Test.make
       ~name:"delegation: revoke prunes exactly the subtree; live-caps balances" ~count:50
       QCheck2.Gen.(pair (list_size (int_range 0 14) (int_bound 1000)) (int_bound 1000))
       (fun (parents, cut) ->
         let k = Kernel.create ~seed:13L () in
         let reg = Tenant.install k in
         let t = Tenant.tenant reg "qc" in
         let src = Stage.source_ro k ~capacity:0 (list_gen []) in
         Tenant.protect reg ~owner:t src;
         let root = Tenant.grant reg t ~rights:Tenant.Read ~underlying:Channel.output src in
         let total = List.length parents + 1 in
         let caps = Array.make total root in
         let parent_of = Array.make total (-1) in
         List.iteri
           (fun i p ->
             let pi = p mod (i + 1) in
             parent_of.(i + 1) <- pi;
             caps.(i + 1) <- Tenant.delegate reg caps.(pi))
           parents;
         if Tenant.live_caps reg t <> total then false
         else begin
           let cut = cut mod total in
           Tenant.revoke reg caps.(cut);
           let dead = Array.make total false in
           dead.(cut) <- true;
           (* Parents precede children in index order, so one forward
              pass closes the subtree. *)
           for i = 1 to total - 1 do
             if dead.(parent_of.(i)) then dead.(i) <- true
           done;
           let ndead = Array.fold_left (fun a d -> if d then a + 1 else a) 0 dead in
           let structure_ok =
             List.for_all
               (fun i -> Tenant.is_revoked caps.(i) = dead.(i))
               (List.init total Fun.id)
           in
           let gauge_ok = Tenant.live_caps reg t = total - ndead in
           Tenant.revoke reg caps.(cut);
           let idempotent = Tenant.live_caps reg t = total - ndead in
           let no_regrow =
             match Tenant.delegate reg caps.(cut) with
             | exception Invalid_argument _ -> true
             | _ -> false
           in
           structure_ok && gauge_ok && idempotent && no_regrow
         end))

(* --- QCheck: handshake and MAC fuzz ----------------------------------- *)

let mutate_payload (f : Frame.t) ~mode ~pos ~bit =
  let len = String.length f.Frame.payload in
  match mode with
  | 0 ->
      let cut = if len = 0 then 0 else pos mod len in
      { f with Frame.payload = String.sub f.Frame.payload 0 cut }
  | _ ->
      if len = 0 then { f with Frame.payload = "\x01" }
      else begin
        let b = Bytes.of_string f.Frame.payload in
        let i = pos mod len in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
        { f with Frame.payload = Bytes.to_string b }
      end

(* Truncated or bit-flipped hello/welcome frames must come back as
   [Error] — never crash the shard process, never verify. *)
let prop_handshake_fuzz =
  Seed.to_alcotest
    (QCheck2.Test.make ~name:"auth handshake: mutated hello/welcome rejected cleanly"
       ~count:120
       QCheck2.Gen.(
         tup5 (int_bound 1) (int_bound 1) (int_bound 255) (int_bound 7) (int_bound 31))
       (fun (which, mode, pos, bit, shard) ->
         let c = community () in
         let nonce = 0xACE0FBA5EL in
         let token = Auth.mint_token c ~shard ~nonce in
         let f =
           if which = 0 then Auth.hello c ~shard ~nonce
           else Auth.welcome c ~shard ~nonce ~token
         in
         let m = mutate_payload f ~mode ~pos ~bit in
         let lookup id = if Int64.equal id community_id then Some c else None in
         if which = 0 then
           match Auth.verify_hello ~lookup m with Ok _ -> false | Error _ -> true
         else
           match Auth.verify_welcome c ~expect_nonce:nonce m with
           | Ok _ -> false
           | Error _ -> true))

(* Sealed data frames: any payload truncation, bit flip, or header
   rewrite must be refused with the clean protocol error — and an
   untouched frame must still open. *)
let prop_sealed_frame_fuzz =
  Seed.to_alcotest
    (QCheck2.Test.make ~name:"auth MAC: mutated sealed frames rejected cleanly" ~count:120
       QCheck2.Gen.(
         tup4 (int_bound 2) (int_bound 255) (int_bound 7) (string_size (int_range 0 40)))
       (fun (mode, pos, bit, payload) ->
         let c = community () in
         let tx = Auth.session c ~token:9L in
         let rx = Auth.session c ~token:9L in
         let f = Frame.make ~kind:Frame.Request ~src:1 ~dst:0 ~seq:3 payload in
         let sealed = Auth.seal tx f in
         let m =
           match mode with
           | 0 | 1 -> mutate_payload sealed ~mode ~pos ~bit
           | _ ->
               { sealed with
                 Frame.hdr = { sealed.Frame.hdr with Frame.src = sealed.Frame.hdr.Frame.src + 1 }
               }
         in
         match Auth.open_ rx m with
         | exception Value.Protocol_error _ ->
             (* Refused: fine unless the mutation was a no-op. *)
             m <> sealed
         | _ -> m = sealed))

(* --- Suite ------------------------------------------------------------ *)

let exploration_tests =
  List.map
    (fun policy ->
      ( "exploration: revoke x drain x crash clean under " ^ Policy.to_string policy,
        `Quick,
        test_exploration_real_impl policy ))
    Policy.quick_matrix

let mutant_tests =
  List.map
    (fun policy ->
      ( "mutant revoke-skips-reclaim caught by " ^ Policy.to_string policy,
        `Quick,
        test_mutant_found policy ))
    Policy.quick_matrix

let suite =
  [
    ("siphash-2-4 reference vectors", `Quick, test_siphash_vectors);
    ("authenticated handshake round-trips", `Quick, test_auth_handshake_roundtrip);
    ("sealed frames open once, replays refused", `Quick, test_auth_seal_open_replay);
    ("credit window revocation reclaims in-flight", `Quick, test_credit_revoke);
    ("adversary battery, deterministic kernel", `Quick, test_adversary_det);
    ("adversary battery over the authenticated wire", `Quick, test_adversary_wire);
    ("mutant hides under FIFO", `Quick, test_mutant_hides_under_fifo);
    prop_delegation_revoke;
    prop_handshake_fuzz;
    prop_sealed_frame_fuzz;
  ]
  @ exploration_tests @ mutant_tests
