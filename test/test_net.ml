(* The simulated interconnect: latency models, loss, partitions,
   meters. *)

module Net = Eden_net.Net
module Sched = Eden_sched.Sched

let check = Alcotest.check
let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let make ?(latency = Net.Fixed 1.0) () =
  let s = Sched.create () in
  let net = Net.create ~sched:s ~latency () in
  let a = Net.add_node net "a" in
  let b = Net.add_node net "b" in
  (s, net, a, b)

let delivery_time s net ~src ~dst ~size =
  let sent_at = Sched.now s in
  let t = ref nan in
  Net.send net ~src ~dst ~size (fun () -> t := Sched.now s);
  Sched.run s;
  !t -. sent_at

let test_fixed_latency () =
  let s, net, a, b = make () in
  check (Alcotest.float 1e-9) "remote" 1.0 (delivery_time s net ~src:a ~dst:b ~size:10)

let test_local_latency_default () =
  let s, net, a, _ = make () in
  (* Same-node default: a tenth of the remote mean. *)
  check (Alcotest.float 1e-9) "local" 0.1 (delivery_time s net ~src:a ~dst:a ~size:10)

let test_per_byte_latency () =
  let s, net, a, b = make ~latency:(Net.Per_byte { base = 1.0; per_byte = 0.01 }) () in
  check (Alcotest.float 1e-9) "size-dependent" 2.0 (delivery_time s net ~src:a ~dst:b ~size:100)

let test_uniform_latency_bounds () =
  let s = Sched.create () in
  let net = Net.create ~sched:s ~latency:(Net.Uniform { lo = 2.0; hi = 3.0 }) () in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  for _ = 1 to 50 do
    let sent_at = Sched.now s in
    let t = ref nan in
    Net.send net ~src:a ~dst:b ~size:1 (fun () -> t := Sched.now s);
    Sched.run s;
    let d = !t -. sent_at in
    Alcotest.(check bool) (Printf.sprintf "%.3f in [2,3]" d) true (d >= 2.0 && d <= 3.0)
  done

let test_exponential_latency_positive () =
  let s = Sched.create () in
  let net = Net.create ~sched:s ~latency:(Net.Exponential { mean = 1.0 }) () in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  for _ = 1 to 50 do
    let sent_at = Sched.now s in
    let t = ref nan in
    Net.send net ~src:a ~dst:b ~size:1 (fun () -> t := Sched.now s);
    Sched.run s;
    Alcotest.(check bool) "positive" true (!t -. sent_at >= 0.0)
  done

let test_link_override () =
  let s, net, a, b = make () in
  Net.set_link_latency net a b (Net.Fixed 5.0);
  check (Alcotest.float 1e-9) "override wins" 5.0 (delivery_time s net ~src:a ~dst:b ~size:1);
  (* Symmetric. *)
  check (Alcotest.float 1e-9) "symmetric" 5.0 (delivery_time s net ~src:b ~dst:a ~size:1)

let test_partition_and_heal () =
  let s, net, a, b = make () in
  Net.partition net a b;
  let delivered = ref false in
  Net.send net ~src:a ~dst:b ~size:1 (fun () -> delivered := true);
  Sched.run s;
  Alcotest.(check bool) "dropped during partition" false !delivered;
  Net.heal net a b;
  Net.send net ~src:a ~dst:b ~size:1 (fun () -> delivered := true);
  Sched.run s;
  Alcotest.(check bool) "delivered after heal" true !delivered;
  (* Partition does not affect local traffic. *)
  Net.partition net a b;
  let local = ref false in
  Net.send net ~src:a ~dst:a ~size:1 (fun () -> local := true);
  Sched.run s;
  Alcotest.(check bool) "local unaffected" true !local

let test_heal_all () =
  let s, net, a, b = make () in
  Net.partition net a b;
  Net.heal_all net;
  let ok = ref false in
  Net.send net ~src:a ~dst:b ~size:1 (fun () -> ok := true);
  Sched.run s;
  Alcotest.(check bool) "healed" true !ok

let test_meter_accounting () =
  let s, net, a, b = make () in
  Net.send net ~src:a ~dst:b ~size:7 (fun () -> ());
  Net.partition net a b;
  Net.send net ~src:a ~dst:b ~size:3 (fun () -> ());
  Sched.run s;
  let m = Net.meter net in
  check Alcotest.int "sent" 2 m.Net.sent;
  check Alcotest.int "delivered" 1 m.Net.delivered;
  check Alcotest.int "dropped" 1 m.Net.dropped;
  check Alcotest.int "drop charged to partition" 1 m.Net.dropped_partition;
  check Alcotest.int "no loss drops" 0 m.Net.dropped_loss;
  check Alcotest.int "bytes counts both" 10 m.Net.bytes;
  Net.reset_meter net;
  check Alcotest.int "reset" 0 (Net.meter net).Net.sent

let test_drop_attribution () =
  (* Loss drops and partition drops are metered separately; the [dropped]
     sum stays for compatibility. *)
  let s, net, a, b = make () in
  Net.set_loss_probability net 1.0;
  Net.send net ~src:a ~dst:b ~size:1 (fun () -> ());
  Net.set_loss_probability net 0.0;
  Net.partition net a b;
  Net.send net ~src:a ~dst:b ~size:1 (fun () -> ());
  (* Both causes at once: charged to the partition only. *)
  Net.set_loss_probability net 1.0;
  Net.send net ~src:a ~dst:b ~size:1 (fun () -> ());
  Sched.run s;
  let m = Net.meter net in
  check Alcotest.int "loss drops" 1 m.Net.dropped_loss;
  check Alcotest.int "partition drops" 2 m.Net.dropped_partition;
  check Alcotest.int "sum" 3 m.Net.dropped

let test_meter_diff () =
  let a =
    { Net.sent = 10; delivered = 8; dropped = 2; dropped_loss = 1; dropped_partition = 1; bytes = 100 }
  in
  let b =
    { Net.sent = 4; delivered = 3; dropped = 1; dropped_loss = 1; dropped_partition = 0; bytes = 30 }
  in
  let d = Net.meter_diff a b in
  check Alcotest.int "sent" 6 d.Net.sent;
  check Alcotest.int "dropped_loss" 0 d.Net.dropped_loss;
  check Alcotest.int "dropped_partition" 1 d.Net.dropped_partition;
  check Alcotest.int "bytes" 70 d.Net.bytes

let test_loss_probability_validation () =
  let s, net, a, b = make () in
  Alcotest.(check bool) "rejects > 1" true
    (try
       Net.set_loss_probability net 1.5;
       false
     with Invalid_argument _ -> true);
  Net.set_loss_probability net 1.0;
  (* Total loss: nothing arrives. *)
  let delivered = ref 0 in
  for _ = 1 to 10 do
    Net.send net ~src:a ~dst:b ~size:1 (fun () -> incr delivered)
  done;
  Sched.run s;
  check Alcotest.int "all lost" 0 !delivered

let test_node_names () =
  let _, net, a, b = make () in
  check Alcotest.string "a" "a" (Net.node_name net a);
  check Alcotest.string "b" "b" (Net.node_name net b);
  check Alcotest.int "count" 2 (Net.node_count net)

let prop_messages_conserved =
  prop "sent = delivered + dropped + in-flight(0 after run)"
    QCheck2.Gen.(pair (int_range 0 30) (float_bound_inclusive 1.0))
    (fun (n, loss) ->
      let s = Sched.create () in
      let net = Net.create ~sched:s ~latency:(Net.Fixed 1.0) () in
      let a = Net.add_node net "a" and b = Net.add_node net "b" in
      Net.set_loss_probability net loss;
      for _ = 1 to n do
        Net.send net ~src:a ~dst:b ~size:1 (fun () -> ())
      done;
      Sched.run s;
      let m = Net.meter net in
      m.Net.sent = n && m.Net.delivered + m.Net.dropped = n)

let suite =
  [
    ("fixed latency", `Quick, test_fixed_latency);
    ("local latency default", `Quick, test_local_latency_default);
    ("per-byte latency", `Quick, test_per_byte_latency);
    ("uniform latency bounds", `Quick, test_uniform_latency_bounds);
    ("exponential latency positive", `Quick, test_exponential_latency_positive);
    ("link override", `Quick, test_link_override);
    ("partition and heal", `Quick, test_partition_and_heal);
    ("heal_all", `Quick, test_heal_all);
    ("meter accounting", `Quick, test_meter_accounting);
    ("drop attribution", `Quick, test_drop_attribution);
    ("meter diff", `Quick, test_meter_diff);
    ("loss probability validation", `Quick, test_loss_probability_validation);
    ("node names", `Quick, test_node_names);
    prop_messages_conserved;
  ]
