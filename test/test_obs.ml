(* The observability layer: histograms, spans, flow meters, exports. *)

open Eden_kernel
module Obs = Eden_obs.Obs
module Ring = Eden_util.Ring
module T = Eden_transput

let check = Alcotest.check

(* --- A minimal JSON validator --------------------------------------- *)

(* No JSON library in the container, so well-formedness is checked by a
   tiny recursive-descent scanner: objects, arrays, strings (with
   escapes), numbers, true/false/null. *)
let validate_json s =
  let n = String.length s in
  let fail i msg = Alcotest.failf "bad JSON at offset %d: %s" i msg in
  let skip i =
    let j = ref i in
    while
      !j < n && (match s.[!j] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr j
    done;
    !j
  in
  let lit i w =
    let l = String.length w in
    if i + l <= n && String.sub s i l = w then i + l else fail i ("expected " ^ w)
  in
  let number i =
    let j = ref i in
    if !j < n && s.[!j] = '-' then incr j;
    let digits () =
      let k = !j in
      while !j < n && (match s.[!j] with '0' .. '9' -> true | _ -> false) do
        incr j
      done;
      if !j = k then fail !j "expected digit"
    in
    digits ();
    if !j < n && s.[!j] = '.' then begin
      incr j;
      digits ()
    end;
    if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
      incr j;
      if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
      digits ()
    end;
    !j
  in
  let rec string_body i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
          if i + 1 >= n then fail i "unterminated escape"
          else (
            match s.[i + 1] with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> string_body (i + 2)
            | 'u' -> if i + 5 < n then string_body (i + 6) else fail i "short \\u escape"
            | _ -> fail i "bad escape")
      | c when Char.code c < 0x20 -> fail i "raw control character in string"
      | _ -> string_body (i + 1)
  in
  let rec value i =
    let i = skip i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | '{' -> obj (skip (i + 1)) ~first:true
      | '[' -> arr (skip (i + 1)) ~first:true
      | '"' -> string_body (i + 1)
      | 't' -> lit i "true"
      | 'f' -> lit i "false"
      | 'n' -> lit i "null"
      | '-' | '0' .. '9' -> number i
      | _ -> fail i "unexpected character"
  and obj i ~first =
    let i = skip i in
    if i < n && s.[i] = '}' then i + 1
    else
      let i =
        if first then i
        else if i < n && s.[i] = ',' then skip (i + 1)
        else fail i "expected , or }"
      in
      let i = skip i in
      let i = if i < n && s.[i] = '"' then string_body (i + 1) else fail i "expected key" in
      let i = skip i in
      let i = if i < n && s.[i] = ':' then i + 1 else fail i "expected :" in
      let i = skip (value i) in
      obj i ~first:false
  and arr i ~first =
    let i = skip i in
    if i < n && s.[i] = ']' then i + 1
    else
      let i =
        if first then i
        else if i < n && s.[i] = ',' then skip (i + 1)
        else fail i "expected , or ]"
      in
      let i = skip (value i) in
      arr i ~first:false
  in
  let i = skip (value 0) in
  if i <> n then fail i "trailing garbage"

(* --- Histograms ------------------------------------------------------ *)

let test_histogram_empty () =
  let h = Obs.Histogram.create () in
  check Alcotest.int "count" 0 (Obs.Histogram.count h);
  check (Alcotest.float 0.0) "p50" 0.0 (Obs.Histogram.percentile h 0.5);
  check (Alcotest.float 0.0) "mean" 0.0 (Obs.Histogram.mean h)

let test_histogram_single_value () =
  let h = Obs.Histogram.create () in
  for _ = 1 to 5 do
    Obs.Histogram.add h 3.0
  done;
  check Alcotest.int "count" 5 (Obs.Histogram.count h);
  check (Alcotest.float 1e-9) "mean" 3.0 (Obs.Histogram.mean h);
  (* Clamping to the observed min/max makes single-valued histograms
     exact at every percentile despite the coarse buckets. *)
  check (Alcotest.float 1e-9) "p50" 3.0 (Obs.Histogram.percentile h 0.5);
  check (Alcotest.float 1e-9) "p99" 3.0 (Obs.Histogram.percentile h 0.99);
  check (Alcotest.float 1e-9) "max" 3.0 (Obs.Histogram.max_value h)

let test_histogram_percentiles_bounded_and_monotone () =
  let h = Obs.Histogram.create ~lo:1.0 ~growth:2.0 () in
  for i = 1 to 100 do
    Obs.Histogram.add h (float_of_int i)
  done;
  check Alcotest.int "count" 100 (Obs.Histogram.count h);
  check (Alcotest.float 1e-9) "min" 1.0 (Obs.Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 100.0 (Obs.Histogram.max_value h);
  let p50 = Obs.Histogram.percentile h 0.5 in
  let p90 = Obs.Histogram.percentile h 0.9 in
  let p99 = Obs.Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
  Alcotest.(check bool) "within observed range" true (p50 >= 1.0 && p99 <= 100.0);
  (* Rank 50 lands in bucket [32,64): a log-bucket answer, but on the
     right side of the median. *)
  Alcotest.(check bool) "p50 in the right bucket" true (p50 >= 32.0 && p50 <= 64.0)

let test_histogram_rejects_bad_config () =
  Alcotest.check_raises "lo must be positive"
    (Invalid_argument "Obs.Histogram.create: lo must be positive") (fun () ->
      ignore (Obs.Histogram.create ~lo:0.0 ()));
  Alcotest.check_raises "growth must exceed 1"
    (Invalid_argument "Obs.Histogram.create: growth must be > 1") (fun () ->
      ignore (Obs.Histogram.create ~growth:1.0 ()))

(* --- Ring.push_force -------------------------------------------------- *)

let test_ring_push_force () =
  let r = Ring.create ~capacity:3 in
  check (Alcotest.option Alcotest.int) "no eviction" None (Ring.push_force r 1);
  check (Alcotest.option Alcotest.int) "no eviction" None (Ring.push_force r 2);
  check (Alcotest.option Alcotest.int) "no eviction" None (Ring.push_force r 3);
  check (Alcotest.option Alcotest.int) "evicts oldest" (Some 1) (Ring.push_force r 4);
  check (Alcotest.option Alcotest.int) "evicts oldest" (Some 2) (Ring.push_force r 5);
  check (Alcotest.list Alcotest.int) "newest 3 retained, in order" [ 3; 4; 5 ]
    (Ring.to_list r)

(* --- Spans ------------------------------------------------------------ *)

let test_span_begin_end () =
  let obs = Obs.create () in
  Obs.enable_spans obs;
  let root = Obs.span_begin obs ~name:"root" ~cat:"user" ~at:1.0 () in
  let child = Obs.span_begin obs ~parent:root ~name:"child" ~cat:"invoke" ~at:2.0 () in
  check Alcotest.int "both open" 2 (List.length (Obs.open_spans obs));
  Obs.span_end obs child ~at:3.0 ~ok:true;
  Obs.span_end obs root ~at:4.0 ~ok:true;
  Obs.span_end obs 9999 ~at:5.0 ~ok:true (* unknown ids are ignored *);
  check Alcotest.int "both closed" 2 (Obs.span_count obs);
  check Alcotest.int "none open" 0 (List.length (Obs.open_spans obs));
  match Obs.spans obs with
  | [ c; r ] ->
      (* Oldest-closed first. *)
      check Alcotest.string "child first" "child" c.Obs.Span.name;
      check (Alcotest.option Alcotest.int) "parent edge" (Some root) c.Obs.Span.parent;
      check (Alcotest.float 1e-9) "duration" 1.0 (Obs.Span.duration c);
      check (Alcotest.option Alcotest.int) "root has no parent" None r.Obs.Span.parent
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_ring_overflow () =
  let obs = Obs.create ~span_capacity:4 () in
  Obs.enable_spans obs;
  for i = 1 to 10 do
    let id = Obs.span_begin obs ~name:(Printf.sprintf "s%d" i) ~cat:"t" ~at:0.0 () in
    Obs.span_end obs id ~at:1.0 ~ok:true
  done;
  check Alcotest.int "ring holds capacity" 4 (Obs.span_count obs);
  check Alcotest.int "evictions counted" 6 (Obs.dropped_spans obs);
  check (Alcotest.list Alcotest.string) "newest retained, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ]
    (List.map (fun s -> s.Obs.Span.name) (Obs.spans obs));
  Obs.clear_spans obs;
  check Alcotest.int "cleared" 0 (Obs.span_count obs);
  check Alcotest.int "dropped reset" 0 (Obs.dropped_spans obs)

let test_spans_disabled_are_free () =
  let obs = Obs.create () in
  Obs.instant obs ~name:"i" ~cat:"t" ~at:0.0 ();
  check Alcotest.int "instants gated off" 0 (Obs.span_count obs);
  Alcotest.(check bool) "disabled by default" false (Obs.spans_enabled obs)

(* --- The invocation tree over a real pipeline ------------------------- *)

let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let run_spanned_pipeline ~n_filters ~n_items =
  let k = Kernel.create () in
  Obs.enable_spans (Kernel.obs k);
  let consumed = ref 0 in
  let p =
    T.Pipeline.build k T.Pipeline.Read_only
      ~gen:(list_gen (List.init n_items (fun i -> Value.Int i)))
      ~filters:(List.init n_filters (fun _ -> T.Transform.identity))
      ~consume:(fun _ -> incr consumed)
  in
  Kernel.run_driver k (fun ctx ->
      Kernel.with_span ctx ~name:"test-root" (fun () -> T.Pipeline.run p));
  (k, p, !consumed)

let test_pipeline_span_tree_matches_predict () =
  let n_filters = 2 and n_items = 8 in
  let k, _, consumed = run_spanned_pipeline ~n_filters ~n_items in
  check Alcotest.int "all items consumed" n_items consumed;
  let obs = Kernel.obs k in
  let all = Obs.spans obs @ Obs.open_spans obs in
  let invokes = List.filter (fun s -> s.Obs.Span.cat = "invoke") all in
  let meter = Kernel.Meter.snapshot k in
  check Alcotest.int "one span per metered invocation" meter.Kernel.Meter.invocations
    (List.length invokes);
  (* Each of the paper's n+1 hops moves every datum once, plus the
     end-of-stream Transfer: (n+1)(items+1) invocations in total. *)
  let pred = T.Pipeline.predict T.Pipeline.Read_only ~n_filters in
  check Alcotest.int "count matches Pipeline.predict"
    (pred.T.Pipeline.invocations_per_datum * (n_items + 1))
    (List.length invokes);
  (* Every invocation chains back to the driver's root span. *)
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.Span.id s) all;
  let root =
    match List.find_opt (fun s -> s.Obs.Span.name = "test-root") all with
    | Some s -> s
    | None -> Alcotest.fail "root span missing"
  in
  let rec reaches_root s =
    s.Obs.Span.id = root.Obs.Span.id
    ||
    match s.Obs.Span.parent with
    | None -> false
    | Some p -> ( match Hashtbl.find_opt by_id p with Some ps -> reaches_root ps | None -> false)
  in
  Alcotest.(check bool) "every invoke span chains to the root" true
    (List.for_all reaches_root invokes)

let test_pipeline_flow_meters () =
  let n_filters = 2 and n_items = 8 in
  let _, p, _ = run_spanned_pipeline ~n_filters ~n_items in
  let flow label =
    match List.assoc_opt label p.T.Pipeline.flows with
    | Some fl -> fl
    | None -> Alcotest.failf "no flow meter registered for %s" label
  in
  check Alcotest.int "source emitted all items" n_items (flow "source").Obs.Flow.items_out;
  check Alcotest.int "sink absorbed all items" n_items (flow "sink").Obs.Flow.items_in;
  List.iter
    (fun i ->
      let fl = flow (Printf.sprintf "filter-%d" i) in
      check Alcotest.int "filter in" n_items fl.Obs.Flow.items_in;
      check Alcotest.int "filter out" n_items fl.Obs.Flow.items_out;
      Alcotest.(check bool) "filter batched" true (fl.Obs.Flow.batches > 0))
    [ 1; 2 ]

let test_rtt_histogram_fed () =
  let k, _, _ = run_spanned_pipeline ~n_filters:1 ~n_items:4 in
  let obs = Kernel.obs k in
  match List.assoc_opt "rtt.Transfer" (Obs.histograms obs) with
  | None -> Alcotest.fail "no rtt.Transfer histogram"
  | Some h ->
      check Alcotest.int "one sample per invocation"
        (Kernel.Meter.snapshot k).Kernel.Meter.invocations (Obs.Histogram.count h);
      Alcotest.(check bool) "positive round trips" true (Obs.Histogram.percentile h 0.5 > 0.0)

(* --- Exports ----------------------------------------------------------- *)

let test_jsonl_export_valid () =
  let k, _, _ = run_spanned_pipeline ~n_filters:2 ~n_items:6 in
  let obs = Kernel.obs k in
  let jsonl = Obs.Export.spans_jsonl obs in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl) in
  check Alcotest.int "one line per completed span" (Obs.span_count obs) (List.length lines);
  List.iter validate_json lines

let test_chrome_trace_valid () =
  let k, _, _ = run_spanned_pipeline ~n_filters:2 ~n_items:6 in
  let json = Obs.Export.chrome_trace (Kernel.obs k) in
  validate_json json;
  Alcotest.(check bool) "has traceEvents" true
    (Eden_util.Text.contains_sub ~sub:"\"traceEvents\"" json);
  Alcotest.(check bool) "has complete events" true
    (Eden_util.Text.contains_sub ~sub:"\"ph\":\"X\"" json)

let test_export_escapes_hostile_strings () =
  let obs = Obs.create () in
  Obs.enable_spans obs;
  let id =
    Obs.span_begin obs ~name:"quote\"back\\slash"
      ~attrs:[ ("key\n", "tab\tnewline\nnul\x00") ]
      ~cat:"user" ~at:0.0 ()
  in
  Obs.span_end obs id ~at:1.0 ~ok:true;
  String.split_on_char '\n' (Obs.Export.spans_jsonl obs)
  |> List.filter (fun l -> l <> "")
  |> List.iter validate_json;
  validate_json (Obs.Export.chrome_trace obs)

let suite =
  [
    ("histogram: empty", `Quick, test_histogram_empty);
    ("histogram: single value is exact", `Quick, test_histogram_single_value);
    ("histogram: percentiles bounded+monotone", `Quick, test_histogram_percentiles_bounded_and_monotone);
    ("histogram: rejects bad config", `Quick, test_histogram_rejects_bad_config);
    ("ring: push_force evicts oldest", `Quick, test_ring_push_force);
    ("span: begin/end and parent edge", `Quick, test_span_begin_end);
    ("span: ring overflow counts drops", `Quick, test_span_ring_overflow);
    ("span: disabled collector records nothing", `Quick, test_spans_disabled_are_free);
    ("pipeline: span tree matches predict", `Quick, test_pipeline_span_tree_matches_predict);
    ("pipeline: flow meters count items", `Quick, test_pipeline_flow_meters);
    ("pipeline: rtt histogram fed", `Quick, test_rtt_histogram_fed);
    ("export: JSONL is valid JSON", `Quick, test_jsonl_export_valid);
    ("export: Chrome trace is valid JSON", `Quick, test_chrome_trace_valid);
    ("export: hostile strings escaped", `Quick, test_export_escapes_hostile_strings);
  ]
