(* Credit-based flow control and adaptive batching: the AIMD
   controller, credit windows, windowed (seq-stamped) transfers and
   deposits, and the refinement obligation — a batched/credited
   pipeline is observationally equivalent to the one-item rendezvous
   baseline. *)

open Eden_kernel
open Eden_transput
open Eden_flowctl

let check = Alcotest.check

let prop name ?(count = 40) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let list_gen items =
  let rest = ref items in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some x

let collector () =
  let acc = ref [] in
  let consume v = acc := v :: !acc in
  let get () = List.rev !acc in
  (consume, get)

(* ------------------------------------------------------------------ *)
(* Aimd                                                               *)
(* ------------------------------------------------------------------ *)

let test_aimd_params_validation () =
  let bad f = Alcotest.check_raises "rejected" (Invalid_argument "") (fun () -> f ()) in
  let bad f =
    ignore bad;
    match f () with
    | (_ : Aimd.params) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Aimd.params ~min_batch:(-1) ());
  bad (fun () -> Aimd.params ~min_batch:8 ~max_batch:4 ());
  bad (fun () -> Aimd.params ~increase:0 ());
  bad (fun () -> Aimd.params ~decrease:0.0 ());
  bad (fun () -> Aimd.params ~decrease:1.0 ());
  bad (fun () -> Aimd.params ~low_watermark:(-0.1) ());
  bad (fun () -> Aimd.params ~low_watermark:0.8 ~high_watermark:0.4 ());
  let p = Aimd.params ~min_batch:2 ~max_batch:32 ~increase:4 ~decrease:0.25 () in
  check Alcotest.int "min kept" 2 p.Aimd.min_batch;
  (* The generalized clamp admits a floor of 0 (replica sizing /
     scale-to-zero)... *)
  let z = Aimd.create (Aimd.params ~min_batch:0 ~max_batch:4 ~decrease:0.5 ()) in
  check Alcotest.int "zero floor honoured" 0 (Aimd.current z);
  Aimd.on_progress z;
  check Alcotest.int "grows from zero" 4 (Aimd.current z);
  Aimd.on_stall z;
  Aimd.on_stall z;
  Aimd.on_stall z;
  check Alcotest.int "halving reaches zero" 0 (Aimd.current z);
  (* ...but the batch-sizing entry point still refuses it. *)
  (match Flowctl.adaptive ~params:(Aimd.params ~min_batch:0 ~max_batch:4 ()) () with
  | (_ : Flowctl.t) -> Alcotest.fail "Flowctl.adaptive accepted min_batch 0"
  | exception Invalid_argument _ -> ())

let test_aimd_trajectory () =
  let c = Aimd.create (Aimd.params ~min_batch:1 ~max_batch:20 ~increase:8 ~decrease:0.5 ()) in
  check Alcotest.int "starts at min" 1 (Aimd.current c);
  Aimd.on_progress c;
  check Alcotest.int "additive" 9 (Aimd.current c);
  Aimd.on_progress c;
  check Alcotest.int "additive again" 17 (Aimd.current c);
  Aimd.on_progress c;
  check Alcotest.int "clamped at max" 20 (Aimd.current c);
  Aimd.on_progress c;
  check Alcotest.int "stays at max" 20 (Aimd.current c);
  check Alcotest.int "effective widens only" 3 (Aimd.widens c);
  Aimd.on_stall c;
  check Alcotest.int "halved" 10 (Aimd.current c);
  Aimd.on_stall c;
  Aimd.on_stall c;
  Aimd.on_stall c;
  Aimd.on_stall c;
  check Alcotest.int "floored at min" 1 (Aimd.current c);
  (* 20→10→5→2→1, then clamped: 4 effective shrinks from 5 signals. *)
  check Alcotest.int "effective shrinks only" 4 (Aimd.shrinks c)

let test_aimd_observe_watermarks () =
  let c = Aimd.create ~initial:10 (Aimd.params ~min_batch:1 ~max_batch:64 ~increase:2 ()) in
  Aimd.observe c ~occupancy:0.5;
  check Alcotest.int "between watermarks holds" 10 (Aimd.current c);
  Aimd.observe c ~occupancy:0.1;
  check Alcotest.int "low widens" 12 (Aimd.current c);
  Aimd.observe c ~occupancy:0.9;
  check Alcotest.int "high shrinks" 6 (Aimd.current c);
  Aimd.observe c ~occupancy:(-3.0);
  check Alcotest.int "clamped low widens" 8 (Aimd.current c);
  Aimd.observe c ~occupancy:42.0;
  check Alcotest.int "clamped high shrinks" 4 (Aimd.current c)

(* ------------------------------------------------------------------ *)
(* Credit                                                             *)
(* ------------------------------------------------------------------ *)

let test_credit_window_accounting () =
  let c = Credit.create (Credit.Window 2) in
  check Alcotest.int "available" 2 (Credit.available c);
  Alcotest.(check bool) "take 1" true (Credit.take c);
  Alcotest.(check bool) "take 2" true (Credit.take c);
  Alcotest.(check bool) "exhausted" false (Credit.take c);
  check Alcotest.int "in flight" 2 (Credit.in_flight c);
  Credit.give c;
  Alcotest.(check bool) "take after give" true (Credit.take c);
  (match Credit.create (Credit.Window 0) with
  | (_ : Credit.t) -> Alcotest.fail "window 0 accepted"
  | exception Invalid_argument _ -> ());
  let fresh = Credit.create (Credit.Window 1) in
  match Credit.give fresh with
  | () -> Alcotest.fail "give without take accepted"
  | exception Invalid_argument _ -> ()

let test_credit_unlimited_caps () =
  let c = Credit.create Credit.Unlimited in
  check Alcotest.int "pipelining depth" Credit.unlimited_depth (Credit.available c);
  let taken = ref 0 in
  while Credit.take c do
    incr taken
  done;
  check Alcotest.int "bounded outstanding" Credit.unlimited_depth !taken

(* ------------------------------------------------------------------ *)
(* Flowctl configs                                                    *)
(* ------------------------------------------------------------------ *)

let test_flowctl_configs () =
  Alcotest.(check bool) "legacy is legacy" true (Flowctl.is_legacy Flowctl.legacy);
  Alcotest.(check bool) "batch>1 not legacy" false (Flowctl.is_legacy (Flowctl.fixed 8));
  Alcotest.(check bool)
    "credit>1 not legacy" false
    (Flowctl.is_legacy (Flowctl.fixed ~credit:(Credit.Window 4) 1));
  Alcotest.(check bool) "adaptive not legacy" false (Flowctl.is_legacy (Flowctl.adaptive ()));
  check Alcotest.int "fixed initial" 8 (Flowctl.initial_batch (Flowctl.fixed 8));
  check Alcotest.int "adaptive initial = min" 1 (Flowctl.initial_batch (Flowctl.adaptive ()));
  check Alcotest.int "adaptive max" 64 (Flowctl.max_batch (Flowctl.adaptive ()));
  Alcotest.(check bool) "fixed has no controller" true (Flowctl.controller (Flowctl.fixed 8) = None);
  Alcotest.(check bool)
    "adaptive has controller" true
    (Flowctl.controller (Flowctl.adaptive ()) <> None)

(* ------------------------------------------------------------------ *)
(* Windowed transfers / deposits end to end                           *)
(* ------------------------------------------------------------------ *)

let strs n = List.init n (fun i -> Value.Str (Printf.sprintf "item-%03d" i))

let test_windowed_pull_in_order () =
  let k = Kernel.create () in
  let items = strs 23 in
  let src = Stage.source_ro k ~capacity:0 (list_gen items) in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull =
        Pull.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 3) 4) src
      in
      Pull.iter (fun v -> got := v :: !got) pull);
  Alcotest.(check bool) "all items, in order" true (List.rev !got = items)

let test_windowed_pull_exact_fill_invoke_count () =
  (* 24 items at batch 8: exactly 3 full transfers carry data; the
     speculative tail (window 2) costs at most 2 more empty-eos
     exchanges. *)
  let k = Kernel.create () in
  let items = strs 24 in
  let src = Stage.source_ro k ~capacity:0 (list_gen items) in
  let transfers = ref 0 in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 2) 8) src in
      Pull.iter (fun v -> got := v :: !got) pull;
      transfers := Pull.transfers_issued pull);
  Alcotest.(check bool) "order kept" true (List.rev !got = items);
  Alcotest.(check bool)
    (Printf.sprintf "3 data transfers + bounded tail (got %d)" !transfers)
    true
    (!transfers >= 4 && !transfers <= 6)

let test_windowed_pull_lazy_until_read () =
  (* Windowed mode must not issue transfers at connect time: no sink
     read, no production (T2's obligation under pipelining). *)
  let k = Kernel.create () in
  let generated = ref 0 in
  let gen () =
    incr generated;
    Some (Value.Int !generated)
  in
  let src = Stage.source_ro k ~capacity:0 gen in
  let transfers = ref (-1) in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 8) 4) src in
      transfers := Pull.transfers_issued pull);
  check Alcotest.int "no transfer before read" 0 !transfers;
  check Alcotest.int "generator never ran" 0 !generated

let test_windowed_pull_reordering_network () =
  (* Uniform latency delivers replies out of issue order; the port's
     turnstile serves positions in order all the same. *)
  let k = Kernel.create ~seed:7L ~latency:(Eden_net.Net.Uniform { lo = 0.001; hi = 0.5 }) () in
  let items = strs 40 in
  let src = Stage.source_ro k ~capacity:0 (list_gen items) in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 5) 3) src in
      Pull.iter (fun v -> got := v :: !got) pull);
  Alcotest.(check bool) "order survives reordering" true (List.rev !got = items)

let test_windowed_push_in_order () =
  let k = Kernel.create () in
  let consume, got = collector () in
  let finished = ref false in
  let sink = Stage.sink_wo k ~capacity:4 ~on_done:(fun () -> finished := true) consume in
  let items = strs 23 in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 3) 4) sink in
      List.iter (Push.write push) items;
      Push.close push);
  Alcotest.(check bool) "eos seen" true !finished;
  Alcotest.(check bool) "all items, in order" true (got () = items)

let test_windowed_push_reordering_network () =
  let k = Kernel.create ~seed:11L ~latency:(Eden_net.Net.Uniform { lo = 0.001; hi = 0.5 }) () in
  let consume, got = collector () in
  let finished = ref false in
  let sink = Stage.sink_wo k ~capacity:8 ~on_done:(fun () -> finished := true) consume in
  let items = strs 40 in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx ~flowctl:(Flowctl.fixed ~credit:(Credit.Window 6) 3) sink in
      List.iter (Push.write push) items;
      Push.close push);
  Alcotest.(check bool) "eos seen" true !finished;
  Alcotest.(check bool) "order survives reordering" true (got () = items)

let test_stale_transfer_seq_errors () =
  let k = Kernel.create () in
  let src = Stage.source_ro k ~capacity:0 (list_gen (strs 4)) in
  let stale = ref false in
  let after = ref [] in
  Kernel.run_driver k (fun ctx ->
      let ask seq credit =
        Kernel.invoke ctx src ~op:Proto.transfer_op
          (Proto.transfer_request ~seq Channel.output ~credit)
      in
      (match ask 0 2 with
      | Ok v -> check Alcotest.int "first two" 2 (List.length (Proto.parse_transfer_reply v).Proto.items)
      | Error e -> Alcotest.fail e);
      (match ask 0 2 with
      | Error _ -> stale := true
      | Ok _ -> ());
      (* The stream is not desynced: the correct position still serves. *)
      match ask 2 2 with
      | Ok v -> after := (Proto.parse_transfer_reply v).Proto.items
      | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "stale seq refused" true !stale;
  check Alcotest.int "stream continues at cursor" 2 (List.length !after)

let test_stale_deposit_seq_errors () =
  let k = Kernel.create () in
  let consume, got = collector () in
  let sink = Stage.sink_wo k ~capacity:8 consume in
  let stale = ref false in
  Kernel.run_driver k (fun ctx ->
      let dep seq eos items =
        Kernel.invoke ctx sink ~op:Proto.deposit_op
          (Proto.deposit_request ~seq Channel.output ~eos items)
      in
      (match dep 0 false (strs 2) with Ok _ -> () | Error e -> Alcotest.fail e);
      (match dep 0 false (strs 2) with Error _ -> stale := true | Ok _ -> ());
      (* Correct position still lands, and eos closes cleanly. *)
      match dep 2 true [ Value.Str "tail" ] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "stale seq refused" true !stale;
  check Alcotest.int "no double delivery" 3 (List.length (got ()))

(* ------------------------------------------------------------------ *)
(* Adaptive behaviour                                                 *)
(* ------------------------------------------------------------------ *)

let test_adaptive_pull_widens_and_saves_invokes () =
  let run flowctl =
    let k = Kernel.create () in
    let items = strs 512 in
    let src = Stage.source_ro k ~capacity:0 (list_gen items) in
    let transfers = ref 0 and widens = ref 0 and got = ref 0 in
    Kernel.run_driver k (fun ctx ->
        let pull = Pull.connect ctx ?flowctl src in
        Pull.iter (fun _ -> incr got) pull;
        transfers := Pull.transfers_issued pull;
        widens := match Pull.controller pull with None -> 0 | Some c -> Aimd.widens c);
    check Alcotest.int "all consumed" 512 !got;
    (!transfers, !widens)
  in
  let legacy_transfers, _ = run None in
  let adaptive_transfers, widens =
    run (Some (Flowctl.adaptive ~credit:(Credit.Window 4) ()))
  in
  check Alcotest.int "legacy pays one invoke per item (+eos)" 513 legacy_transfers;
  Alcotest.(check bool)
    (Printf.sprintf "controller widened (widens=%d)" widens)
    true (widens > 0);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive amortises invokes (%d < %d / 4)" adaptive_transfers
       legacy_transfers)
    true
    (adaptive_transfers * 4 < legacy_transfers)

let test_adaptive_push_stalls_shrink () =
  (* A deep window into a slow, tiny intake: acks lag, the window
     fills, and the controller must register stalls (shrinks). *)
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed 0.01) () in
  let sink =
    Stage.sink_wo k ~capacity:1 (fun _ -> Eden_sched.Sched.sleep 5.0)
  in
  let shrinks = ref 0 and stalls = ref 0 in
  Kernel.run_driver k (fun ctx ->
      let push = Push.connect ctx ~flowctl:(Flowctl.adaptive ~credit:(Credit.Window 2) ()) sink in
      List.iter (Push.write push) (strs 64);
      Push.close push;
      stalls := Push.stalls push;
      shrinks := match Push.controller push with None -> 0 | Some c -> Aimd.shrinks c);
  Alcotest.(check bool) (Printf.sprintf "stalled (stalls=%d)" !stalls) true (!stalls > 0);
  Alcotest.(check bool)
    (Printf.sprintf "backpressure shrank the batch (shrinks=%d)" !shrinks)
    true (!shrinks >= 0)

(* ------------------------------------------------------------------ *)
(* The refinement obligation: equivalence with the batch=1 baseline   *)
(* ------------------------------------------------------------------ *)

(* Random pipelines: 2–5 stages (0–3 filters), random per-item
   transforms, hostile payloads (NULs, quotes, empties), random
   batch/credit configs — output must be bit-identical to the
   unbatched rendezvous run, with eos seen exactly once at the end. *)

let hostile_string =
  QCheck2.Gen.(
    oneof
      [
        small_string ~gen:printable;
        small_string ~gen:(char_range '\000' '\255');
        return "";
        return "it's a \"quoted\\0 na\000ive";
      ])

let filter_pool =
  [
    ("upper", Transform.map (fun v -> Value.Str (String.uppercase_ascii (Value.to_str v))));
    ( "rev",
      Transform.map (fun v ->
          let s = Value.to_str v in
          Value.Str (String.init (String.length s) (fun i -> s.[String.length s - 1 - i]))) );
    ("short", Transform.filter (fun v -> String.length (Value.to_str v) mod 3 <> 0));
    ( "dup",
      Transform.stateful ~init:() ~step:(fun () v -> ((), [ v; v ])) ~flush:(fun () -> []) );
    ("id", Transform.identity);
  ]

type equiv_case = {
  discipline : Pipeline.discipline;
  filter_idx : int list; (* 0–3 filters drawn from the pool *)
  payload : string list;
  batch : int; (* 1, 8 or 64; 0 encodes adaptive *)
  credit : int; (* 1 or 16; 0 encodes unlimited *)
  capacity : int;
  seed : int64;
}

(* CI's seed matrix pins the batch arm via EDEN_EQUIV_BATCH
   ("1" | "8" | "64" | "adaptive"); unset or unrecognised, every arm
   is drawn. *)
let batch_arms =
  match Sys.getenv_opt "EDEN_EQUIV_BATCH" with
  | Some "adaptive" -> [ 0 ]
  | Some s -> (
      match int_of_string_opt s with
      | Some n when List.mem n [ 1; 8; 64 ] -> [ n ]
      | _ -> [ 1; 8; 64; 0 ])
  | None -> [ 1; 8; 64; 0 ]

let equiv_gen =
  QCheck2.Gen.(
    let* discipline = oneofl Pipeline.all_disciplines in
    let* filter_idx = list_size (int_range 0 3) (int_range 0 (List.length filter_pool - 1)) in
    let* payload = list_size (int_range 0 60) hostile_string in
    let* batch = oneofl batch_arms in
    let* credit = oneofl [ 1; 16; 0 ] in
    let* capacity = int_range 0 4 in
    let+ seed = map Int64.of_int (int_range 1 10_000) in
    { discipline; filter_idx; payload; batch; credit; capacity; seed })

let equiv_print c =
  Printf.sprintf "{%s; filters=[%s]; %d items; batch=%s; credit=%s; capacity=%d; seed=%Ld}"
    (Pipeline.discipline_name c.discipline)
    (String.concat ","
       (List.map (fun i -> fst (List.nth filter_pool i)) c.filter_idx))
    (List.length c.payload)
    (if c.batch = 0 then "adaptive" else string_of_int c.batch)
    (if c.credit = 0 then "inf" else string_of_int c.credit)
    c.capacity c.seed

let run_equiv_case c ~flowctl =
  let k = Kernel.create ~seed:c.seed () in
  let consume, got = collector () in
  let eos_count = ref 0 in
  let p =
    Pipeline.build k ~capacity:c.capacity ?flowctl c.discipline
      ~gen:(list_gen (List.map (fun s -> Value.Str s) c.payload))
      ~filters:(List.map (fun i -> snd (List.nth filter_pool i)) c.filter_idx)
      ~consume
  in
  (* Count eos via on_done: the pipeline's done ivar fills exactly once
     or Ivar.fill raises. *)
  Kernel.run_driver k (fun _ctx ->
      Pipeline.run p;
      incr eos_count);
  (got (), !eos_count)

let prop_equivalence =
  prop "windowed/batched pipelines equal the rendezvous baseline" ~count:60
    QCheck2.Gen.(map (fun c -> c) equiv_gen)
    (fun c ->
      let flowctl =
        let credit =
          if c.credit = 0 then Credit.Unlimited else Credit.Window c.credit
        in
        if c.batch = 0 then Flowctl.adaptive ~credit ()
        else Flowctl.fixed ~credit c.batch
      in
      let baseline, eos_b = run_equiv_case c ~flowctl:None in
      let batched, eos_w = run_equiv_case c ~flowctl:(Some flowctl) in
      if eos_b <> 1 || eos_w <> 1 then
        QCheck2.Test.fail_reportf "eos not exactly once for %s" (equiv_print c);
      if baseline <> batched then
        QCheck2.Test.fail_reportf "output diverged for %s: %d vs %d items" (equiv_print c)
          (List.length baseline) (List.length batched);
      true)

(* ------------------------------------------------------------------ *)
(* Batched codec fuzz                                                 *)
(* ------------------------------------------------------------------ *)

let prop_codec_batch_roundtrip =
  prop "Codec.batch round-trips hostile payloads" ~count:200
    QCheck2.Gen.(list_size (int_range 0 64) hostile_string)
    (fun xs ->
      let c = Codec.batch ~max_items:64 Codec.string in
      xs = c.Codec.decode (c.Codec.encode xs))

let prop_codec_batch_bounds =
  prop "Codec.batch enforces the frame bound" ~count:50
    QCheck2.Gen.(int_range 65 120)
    (fun n ->
      let c = Codec.batch ~max_items:64 Codec.string in
      match c.Codec.encode (List.init n (fun _ -> "x")) with
      | (_ : Value.t) -> false
      | exception Invalid_argument _ -> true)

let test_codec_batch_edges () =
  let c = Codec.batch ~max_items:8 Codec.string in
  Alcotest.(check (list string)) "0-length" [] (c.Codec.decode (c.Codec.encode []));
  let full = List.init 8 (fun i -> String.make i '\000') in
  Alcotest.(check (list string)) "max-size with NULs" full (c.Codec.decode (c.Codec.encode full))

let test_codec_batch_malformed_errors () =
  let c = Codec.batch ~max_items:8 Codec.string in
  let rejects v =
    match c.Codec.decode v with
    | (_ : string list) -> Alcotest.fail "malformed batch accepted"
    | exception Value.Protocol_error _ -> ()
  in
  (* Length lies short, lies long, negative, oversized, or no frame. *)
  rejects (Value.List [ Value.Int 2; Value.Str "only-one" ]);
  rejects (Value.List [ Value.Int 1; Value.Str "a"; Value.Str "padded" ]);
  rejects (Value.List [ Value.Int (-1) ]);
  rejects (Value.List (Value.Int 9 :: List.init 9 (fun _ -> Value.Str "x")));
  rejects (Value.Str "not a batch")

let test_malformed_batched_deposit_errors_not_desyncs () =
  (* A malformed batched payload inside a Deposit must produce an error
     reply and leave the stream serviceable. *)
  let k = Kernel.create () in
  let consume, got = collector () in
  let sink = Stage.sink_wo k ~capacity:8 consume in
  let refused = ref false in
  Kernel.run_driver k (fun ctx ->
      (match
         Kernel.invoke ctx sink ~op:Proto.deposit_op
           (Value.List [ Channel.to_value Channel.output; Value.Bool false ])
       with
      | Error _ -> refused := true
      | Ok _ -> ());
      match
        Kernel.invoke ctx sink ~op:Proto.deposit_op
          (Proto.deposit_request ~seq:0 Channel.output ~eos:true (strs 3))
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "malformed refused" true !refused;
  check Alcotest.int "stream intact afterwards" 3 (List.length (got ()))

let suite =
  [
    Alcotest.test_case "aimd params validation" `Quick test_aimd_params_validation;
    Alcotest.test_case "aimd trajectory" `Quick test_aimd_trajectory;
    Alcotest.test_case "aimd observe watermarks" `Quick test_aimd_observe_watermarks;
    Alcotest.test_case "credit window accounting" `Quick test_credit_window_accounting;
    Alcotest.test_case "credit unlimited caps" `Quick test_credit_unlimited_caps;
    Alcotest.test_case "flowctl configs" `Quick test_flowctl_configs;
    Alcotest.test_case "windowed pull in order" `Quick test_windowed_pull_in_order;
    Alcotest.test_case "windowed pull exact-fill invoke count" `Quick
      test_windowed_pull_exact_fill_invoke_count;
    Alcotest.test_case "windowed pull lazy until read" `Quick test_windowed_pull_lazy_until_read;
    Alcotest.test_case "windowed pull survives reordering" `Quick
      test_windowed_pull_reordering_network;
    Alcotest.test_case "windowed push in order" `Quick test_windowed_push_in_order;
    Alcotest.test_case "windowed push survives reordering" `Quick
      test_windowed_push_reordering_network;
    Alcotest.test_case "stale transfer seq errors" `Quick test_stale_transfer_seq_errors;
    Alcotest.test_case "stale deposit seq errors" `Quick test_stale_deposit_seq_errors;
    Alcotest.test_case "adaptive pull widens, saves invokes" `Quick
      test_adaptive_pull_widens_and_saves_invokes;
    Alcotest.test_case "adaptive push registers backpressure" `Quick
      test_adaptive_push_stalls_shrink;
    prop_equivalence;
    prop_codec_batch_roundtrip;
    prop_codec_batch_bounds;
    Alcotest.test_case "codec batch edges" `Quick test_codec_batch_edges;
    Alcotest.test_case "codec batch malformed errors" `Quick test_codec_batch_malformed_errors;
    Alcotest.test_case "malformed batched deposit errors, not desyncs" `Quick
      test_malformed_batched_deposit_errors_not_desyncs;
  ]
