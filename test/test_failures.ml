(* Failure injection across the stack: lost messages, crashed Ejects
   mid-stream, partitions, and checkpoint-based stream recovery. *)

open Eden_kernel
open Eden_transput
module Net = Eden_net.Net
module Dev = Eden_devices.Devices

let check = Alcotest.check

let test_loss_with_retry () =
  (* Invocation is at-most-once: under 30% message loss a plain invoke
     may never complete, but an idempotent operation retried on timeout
     always gets through eventually.  The echo Eject lives on a remote
     node: only inter-node hops traverse the lossy medium. *)
  let k = Kernel.create ~seed:77L ~nodes:[ "a"; "b" ] () in
  let nb = List.nth (Kernel.nodes k) 1 in
  let echo =
    Kernel.create_eject k ~node:nb ~type_name:"echo" (fun _ctx ~passive:_ ->
        [ ("Echo", Fun.id) ])
  in
  Net.set_loss_probability (Kernel.net k) 0.3;
  let attempts = ref 0 and successes = ref 0 in
  Kernel.run_driver k (fun ctx ->
      (* 20 calls, each retried to completion: over ~40+ messages at 30%
         loss, drops are a statistical certainty. *)
      for i = 1 to 20 do
        let rec retry n =
          if n > 100 then ()
          else begin
            incr attempts;
            match Kernel.invoke_timeout ctx echo ~op:"Echo" (Value.Int i) ~timeout:10.0 with
            | Some (Ok (Value.Int j)) when j = i -> incr successes
            | Some (Ok _) | Some (Error _) | None -> retry (n + 1)
          end
        in
        retry 1
      done);
  check Alcotest.int "every call eventually succeeded" 20 !successes;
  let m = Net.meter (Kernel.net k) in
  Alcotest.(check bool) "losses actually happened" true (m.Net.dropped > 0);
  Alcotest.(check bool) "retries were needed" true (!attempts > 20)

let test_crashed_filter_stalls_pipeline_visibly () =
  (* Crash a filter mid-stream: the sink's Transfer never completes and
     the stall is diagnosable from the blocked-fiber listing. *)
  let k = Kernel.create () in
  let src = Dev.text_source k ~capacity:8 (List.init 100 string_of_int) in
  let f = Stage.filter_ro k ~name:"doomed" ~upstream:src Transform.identity in
  let seen = ref 0 in
  let sink =
    Stage.sink_ro k ~upstream:f (fun _ ->
        incr seen;
        if !seen = 5 then Kernel.crash k f)
  in
  Kernel.poke k sink;
  Eden_sched.Sched.run (Kernel.sched k);
  Alcotest.(check bool) "some items flowed first" true (!seen >= 5);
  Alcotest.(check bool) "far from complete" true (!seen < 100);
  let blocked = Eden_sched.Sched.blocked (Kernel.sched k) in
  Alcotest.(check bool) "sink visibly waiting on its ivar/mailbox" true
    (List.exists (fun (name, _) -> Eden_util.Text.contains_sub ~sub:"sink" name) blocked);
  check Alcotest.int "crash metered" 1 (Kernel.Meter.snapshot k).Kernel.Meter.crashes

let test_partition_stalls_then_drops_counted () =
  let k = Kernel.create ~nodes:[ "a"; "b" ] () in
  let nodes = Kernel.nodes k in
  let na = List.nth nodes 0 and nb = List.nth nodes 1 in
  let src = Dev.text_source k ~node:nb ~capacity:4 [ "x"; "y"; "z" ] in
  let seen = ref 0 in
  let sink = Stage.sink_ro k ~node:na ~upstream:src (fun _ -> incr seen) in
  Net.partition (Kernel.net k) na nb;
  Kernel.poke k sink;
  Eden_sched.Sched.run (Kernel.sched k);
  check Alcotest.int "nothing crossed the partition" 0 !seen;
  let m = Net.meter (Kernel.net k) in
  Alcotest.(check bool) "drops metered" true (m.Net.dropped > 0)

(* A durable source: a file-reader Eject that checkpoints its read
   position after serving each batch, so a crash resumes from the last
   checkpoint rather than the beginning (§1's passive representation).
   At-most-once delivery means items served after the last checkpoint
   are re-served — visible as duplicates, never as gaps. *)
let durable_source k lines =
  Kernel.create_eject k ~dispatch:Kernel.Concurrent ~type_name:"durable-source"
    (fun ctx ~passive ->
      let start = match passive with Some v -> Value.to_int v | None -> 0 in
      let port = Port.create () in
      let w = Port.add_channel port ~capacity:0 Channel.output in
      Kernel.spawn_worker ctx (fun () ->
          let rec serve i =
            if i >= List.length lines then Port.close w
            else begin
              Port.write w (Value.Str (List.nth lines i));
              Kernel.checkpoint ctx (Value.Int (i + 1));
              serve (i + 1)
            end
          in
          serve start);
      Port.handlers port)

let test_checkpointed_source_resumes_after_crash () =
  let k = Kernel.create () in
  let lines = List.init 10 (fun i -> Printf.sprintf "item-%d" i) in
  let src = durable_source k lines in
  let collected = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx src in
      (* Read half, then the source crashes. *)
      for _ = 1 to 5 do
        match Pull.read pull with
        | Some v -> collected := Value.to_str v :: !collected
        | None -> ()
      done;
      Kernel.crash k src;
      (* A fresh connection resumes from the checkpoint. *)
      let pull2 = Pull.connect ctx src in
      Pull.iter (fun v -> collected := Value.to_str v :: !collected) pull2);
  let got = List.rev !collected in
  (* No gaps: every one of the ten items was delivered at least once,
     in order; duplicates (if any) are adjacent re-serves. *)
  let dedup =
    List.fold_left (fun acc x -> match acc with y :: _ when y = x -> acc | _ -> x :: acc) [] got
    |> List.rev
  in
  check Alcotest.(list string) "no gaps, order preserved" lines dedup

let test_crash_without_checkpoint_restarts_stream () =
  (* The contrast case: an ordinary (volatile) source restarts from the
     beginning after a crash — the reader sees the prefix again. *)
  let k = Kernel.create () in
  let gen_count = ref 0 in
  let src =
    Kernel.create_eject k ~dispatch:Kernel.Concurrent ~type_name:"volatile-source"
      (fun ctx ~passive:_ ->
        let port = Port.create () in
        let w = Port.add_channel port ~capacity:0 Channel.output in
        Kernel.spawn_worker ctx (fun () ->
            for i = 1 to 4 do
              incr gen_count;
              Port.write w (Value.Int i)
            done;
            Port.close w);
        Port.handlers port)
  in
  let first = ref [] and second = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx src in
      (match Pull.read pull with Some v -> first := [ Value.to_int v ] | None -> ());
      Kernel.crash k src;
      let pull2 = Pull.connect ctx src in
      Pull.iter (fun v -> second := Value.to_int v :: !second) pull2);
  check Alcotest.(list int) "prefix replayed" [ 1 ] !first;
  check Alcotest.(list int) "restarted from scratch" [ 1; 2; 3; 4 ] (List.rev !second)

let test_sink_timeout_detects_dead_producer () =
  (* A consumer protecting itself with invoke_timeout can distinguish a
     dead producer from a slow one and give up cleanly. *)
  let k = Kernel.create () in
  let src = Dev.text_source k ~capacity:2 [ "a"; "b"; "c" ] in
  let outcome = ref `Unknown in
  Kernel.run_driver k (fun ctx ->
      (* First read succeeds... *)
      (match
         Kernel.invoke_timeout ctx src ~op:Proto.transfer_op
           (Proto.transfer_request Channel.output ~credit:1)
           ~timeout:20.0
       with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "first transfer should work");
      Kernel.crash k src;
      (* The crash dropped the source's worker; its buffer is gone and
         the retry times out. *)
      match
        Kernel.invoke_timeout ctx src ~op:Proto.transfer_op
          (Proto.transfer_request Channel.output ~credit:1)
          ~timeout:20.0
      with
      | None -> outcome := `Timed_out
      | Some (Error _) -> outcome := `Errored
      | Some (Ok _) -> outcome := `Replied);
  (* Either a timeout (handler parked on an empty buffer) or a clean
     error is acceptable; silence-as-success is not.  The volatile
     source restarts its worker on reactivation, so a reply is also
     legitimate — what matters is the consumer regained control. *)
  Alcotest.(check bool) "consumer regained control" true (!outcome <> `Unknown)

let test_timeout_seals_reply_slot () =
  (* A timed-out invocation's reply slot is sealed: the late reply is
     discarded rather than left filling an ivar nobody reads, a
     subsequent call gets its own fresh reply, and the expiry is
     metered. *)
  let k = Kernel.create () in
  let slow =
    Kernel.create_eject k ~dispatch:Kernel.Concurrent ~type_name:"slow"
      (fun _ctx ~passive:_ ->
        [
          ( "Nap",
            fun v ->
              Eden_sched.Sched.sleep 5.0;
              v );
        ])
  in
  let late = ref None and second = ref None in
  Kernel.run_driver k (fun ctx ->
      late := Some (Kernel.invoke_timeout ctx slow ~op:"Nap" (Value.Int 1) ~timeout:1.0);
      (* Let the late reply arrive at the sealed slot. *)
      Eden_sched.Sched.sleep 10.0;
      second := Some (Kernel.invoke_timeout ctx slow ~op:"Nap" (Value.Int 2) ~timeout:20.0));
  check Alcotest.int "one timeout metered" 1 (Kernel.timeouts k);
  (match !late with
  | Some None -> ()
  | _ -> Alcotest.fail "first call should time out");
  (match !second with
  | Some (Some (Ok (Value.Int 2))) -> ()
  | _ -> Alcotest.fail "second call should get its own reply, not the stale one");
  (* No abandoned timeout waiter lingers in the blocked-fiber report. *)
  Alcotest.(check bool) "no orphaned timeout waiters" true
    (not
       (List.exists
          (fun (_, reason) -> Eden_util.Text.contains_sub ~sub:"timeout" reason)
          (Eden_sched.Sched.blocked (Kernel.sched k))))

let test_loss_free_run_has_no_drops () =
  (* Sanity for the meters themselves. *)
  let k = Kernel.create () in
  let src = Dev.text_source k [ "a"; "b" ] in
  let sink = Stage.sink_ro k ~upstream:src ignore in
  Kernel.poke k sink;
  Kernel.run k;
  let m = Net.meter (Kernel.net k) in
  check Alcotest.int "no drops" 0 m.Net.dropped;
  check Alcotest.int "sent = delivered" m.Net.sent m.Net.delivered

let test_dangling_uid_under_total_loss () =
  (* Regression: the kernel's local "no such eject" error is modelled as
     a same-node network hop.  Same-node messages must be exempt from
     simulated loss, or invoking a dangling UID on a lossy network hangs
     forever instead of returning an error. *)
  let k = Kernel.create ~nodes:[ "a"; "b" ] () in
  Net.set_loss_probability (Kernel.net k) 1.0;
  let answered = ref None in
  Kernel.run_driver k (fun ctx ->
      let dangling = Kernel.mint ctx in
      answered := Some (Kernel.invoke ctx dangling ~op:"Echo" Value.Unit));
  match !answered with
  | Some (Error _) -> ()
  | Some (Ok _) -> Alcotest.fail "a dangling UID cannot succeed"
  | None -> Alcotest.fail "invocation hung under total loss"

let test_same_node_exempt_from_loss () =
  (* The loss coin is only tossed for inter-node messages: a node does
     not lose messages to itself. *)
  let k = Kernel.create ~nodes:[ "a"; "b" ] () in
  Net.set_loss_probability (Kernel.net k) 1.0;
  let echo =
    Kernel.create_eject k ~type_name:"echo" (fun _ctx ~passive:_ -> [ ("Echo", Fun.id) ])
  in
  let got = ref false in
  Kernel.run_driver k (fun ctx ->
      match Kernel.invoke ctx echo ~op:"Echo" (Value.Int 7) with
      | Ok (Value.Int 7) -> got := true
      | Ok _ | Error _ -> ());
  Alcotest.(check bool) "same-node invocation delivered" true !got;
  check Alcotest.int "nothing dropped" 0 (Net.meter (Kernel.net k)).Net.dropped

let suite =
  [
    ("loss + retry on idempotent op", `Quick, test_loss_with_retry);
    ("dangling UID errors under total loss", `Quick, test_dangling_uid_under_total_loss);
    ("same-node messages exempt from loss", `Quick, test_same_node_exempt_from_loss);
    ("crashed filter stalls visibly", `Quick, test_crashed_filter_stalls_pipeline_visibly);
    ("partition stalls, drops counted", `Quick, test_partition_stalls_then_drops_counted);
    ("checkpointed source resumes", `Quick, test_checkpointed_source_resumes_after_crash);
    ("volatile source restarts", `Quick, test_crash_without_checkpoint_restarts_stream);
    ("sink timeout detects dead producer", `Quick, test_sink_timeout_detects_dead_producer);
    ("loss-free run has no drops", `Quick, test_loss_free_run_has_no_drops);
  ]
