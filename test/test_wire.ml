(* The wire layer: binary Value codec under hostile input, frame
   round-trips and handshakes, fault injection at the framing layer,
   the transport-wait stall exemption, and the headline contract — the
   multi-process cluster (one OS process per shard over real sockets)
   is byte-equivalent to the in-process deterministic oracle. *)

module Bin = Eden_wire.Bin
module Frame = Eden_wire.Frame
module Faults = Eden_wire.Faults
module Transport = Eden_wire.Transport
module Value = Eden_kernel.Value
module Uid = Eden_kernel.Uid
module Kernel = Eden_kernel.Kernel
module Sched = Eden_sched.Sched
module Net = Eden_net.Net
module Codec = Eden_transput.Codec
module Pipeline = Eden_transput.Pipeline
module Cluster = Eden_par.Cluster
module Fanin = Eden_par.Fanin
module Distpipe = Eden_par.Distpipe
module Check = Eden_check.Check
module Trace = Eden_check.Trace
module Workloads = Eden_check.Workloads

let check = Alcotest.check

let prop name ?(count = 100) gen f =
  Seed.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let protocol_error name f =
  match f () with
  | exception Value.Protocol_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Protocol_error, got %s" name (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Protocol_error, decoded fine" name

(* --- Bin: Value codec ------------------------------------------------- *)

let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Value.Unit;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) int;
            map (fun f -> Value.Float f) float;
            return (Value.Float nan);
            map (fun s -> Value.Str s) string_small;
            map2
              (fun t s ->
                Value.Uid (Uid.of_wire ~tag:(Int64.of_int t) ~serial:s))
              nat nat;
          ]
      in
      if n <= 0 then leaf
      else
        oneof [ leaf; map (fun vs -> Value.List vs) (list_size (int_bound 4) (self (n / 2))) ])

(* Structural equality that treats NaN as equal to itself — the codec
   must round-trip the bits, not IEEE comparison semantics. *)
let value_eq a b = compare a b = 0

let prop_bin_roundtrip =
  prop "bin: decode inverts encode (every constructor, NaN included)" value_gen
    (fun v -> value_eq v (Bin.decode (Bin.encode v)))

let prop_bin_prefix_rejected =
  prop "bin: every strict prefix is a Protocol_error" ~count:60 value_gen (fun v ->
      let s = Bin.encode v in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        (match Bin.decode (String.sub s 0 n) with
        | exception Value.Protocol_error _ -> ()
        | _ -> ok := false);
        (* and cut-mid-frame must not desync decode_prefix either *)
        match Bin.decode_prefix (String.sub s 0 n) ~pos:0 with
        | exception Value.Protocol_error _ -> ()
        | _ when n = 0 -> ok := false
        | _, stop -> if stop > n then ok := false
      done;
      !ok)

let test_bin_trailing_garbage () =
  protocol_error "trailing byte" (fun () -> Bin.decode (Bin.encode (Value.Int 7) ^ "\x00"));
  protocol_error "trailing frame" (fun () ->
      Bin.decode (Bin.encode Value.Unit ^ Bin.encode Value.Unit))

let test_bin_hostile_headers () =
  (* A forged 4 GiB string length backed by 2 bytes must be rejected
     before any allocation (cheaply — this test would OOM otherwise). *)
  protocol_error "forged string length" (fun () -> Bin.decode "\x04\xff\xff\xff\xffab");
  protocol_error "forged list count" (fun () -> Bin.decode "\x06\xff\xff\xff\x00");
  protocol_error "unknown tag" (fun () -> Bin.decode "\x7fhello");
  protocol_error "empty input" (fun () -> Bin.decode "");
  protocol_error "truncated int" (fun () -> Bin.decode "\x02\x00\x01");
  (* 10_000 nested list-of-1 headers: the depth cap must fire, not the
     OCaml stack. *)
  let deep =
    String.concat "" (List.init 10_000 (fun _ -> "\x06\x00\x00\x00\x01")) ^ "\x00"
  in
  protocol_error "crafted deep nesting" (fun () -> Bin.decode deep)

let test_bin_size_law () =
  (* The simulated latency model and the real transport must agree on
     what a value costs: wire size is Value.size plus one tag byte per
     node (for Unit the tag IS the value, so no extra byte). *)
  let rec tag_overhead = function
    | Value.Unit -> 0
    | Value.List vs -> List.fold_left (fun a v -> a + tag_overhead v) 1 vs
    | _ -> 1
  in
  List.iter
    (fun v ->
      check Alcotest.int
        (Printf.sprintf "encoded size matches Value.size for %s" (Value.preview v))
        (Value.size v + tag_overhead v)
        (String.length (Bin.encode v)))
    [
      Value.Unit;
      Value.Bool true;
      Value.Int (-1);
      Value.Float 1.5;
      Value.Str "hello";
      Value.List [ Value.Int 1; Value.Str "x"; Value.Unit ];
      Value.List [];
    ]

(* --- Frame ------------------------------------------------------------ *)

let frame_gen =
  let open QCheck2.Gen in
  let kind =
    oneofl
      Frame.[ Hello; Welcome; Request; Reply; Idle; Shutdown; Stats ]
  in
  map
    (fun (kind, (flags, src, dst), seq, payload) ->
      Frame.make ~kind ~flags ~src ~dst ~seq payload)
    (tup4 kind
       (tup3 (int_bound 255) (int_bound 255) (int_bound 255))
       (int_bound 0xFFFFFFFF) string_small)

let prop_frame_roundtrip =
  prop "frame: decode inverts encode for every message kind" frame_gen (fun f ->
      Frame.decode (Frame.encode f) = f)

let test_frame_malformed () =
  protocol_error "short input" (fun () -> Frame.decode "\x00\x00");
  protocol_error "length below header" (fun () -> Frame.decode "\x00\x00\x00\x03abc");
  (* An adversarial length prefix: 0xFFFFFFFF exceeds the cap and is
     rejected before the decoder trusts it. *)
  protocol_error "length above cap" (fun () ->
      Frame.decode ("\xff\xff\xff\xff" ^ String.make 8 '\x00'));
  protocol_error "unknown kind" (fun () ->
      Frame.decode "\x00\x00\x00\x08\x63\x00\x00\x00\x00\x00\x00\x00");
  protocol_error "length disagrees with bytes" (fun () ->
      Frame.decode "\x00\x00\x00\x09\x01\x00\x00\x00\x00\x00\x00\x00")

let test_frame_handshake () =
  let shard, nonce = Frame.parse_handshake ~expect:Frame.Hello (Frame.hello ~shard:3 ~nonce:42L) in
  check Alcotest.int "shard echoes" 3 shard;
  check Alcotest.int64 "nonce echoes" 42L nonce;
  let corrupt ~at c =
    let f = Frame.welcome ~shard:1 ~nonce:7L in
    let p = Bytes.of_string f.Frame.payload in
    Bytes.set p at c;
    { f with Frame.payload = Bytes.to_string p }
  in
  protocol_error "wrong kind" (fun () ->
      Frame.parse_handshake ~expect:Frame.Welcome (Frame.hello ~shard:1 ~nonce:7L));
  protocol_error "bad magic" (fun () ->
      Frame.parse_handshake ~expect:Frame.Welcome (corrupt ~at:0 '\xff'));
  protocol_error "bad version" (fun () ->
      Frame.parse_handshake ~expect:Frame.Welcome (corrupt ~at:5 '\x63'));
  protocol_error "short payload" (fun () ->
      Frame.parse_handshake ~expect:Frame.Welcome
        (Frame.make ~kind:Frame.Welcome ~src:0 ~dst:1 "short"))

(* --- Faults at the framing layer -------------------------------------- *)

let test_faults_handshake_boundary () =
  (* A frame offered before the link is established drops into the
     partition bucket and must NOT consume a script event — same rule
     as the simulated Net's establishment gate. *)
  let f = Faults.of_script [ Faults.Lose ] in
  check Alcotest.bool "unestablished frame drops" true
    (Faults.apply f ~established:false ~size:20 = Faults.Drop);
  let m = Faults.meter f in
  check Alcotest.int "charged to partition" 1 m.Net.dropped_partition;
  check Alcotest.int "not to loss" 0 m.Net.dropped_loss;
  check Alcotest.int "script untouched" 1 (Faults.remaining f);
  (* Established: the Lose event is consumed and charged to loss. *)
  check Alcotest.bool "established frame consumes Lose" true
    (Faults.apply f ~established:true ~size:20 = Faults.Drop);
  let m = Faults.meter f in
  check Alcotest.int "loss charged" 1 m.Net.dropped_loss;
  check Alcotest.int "script consumed" 0 (Faults.remaining f);
  (* Exhausted script passes; partition overrides it. *)
  check Alcotest.bool "exhausted script passes" true
    (Faults.apply f ~established:true ~size:20 = Faults.Pass);
  Faults.partition f;
  check Alcotest.bool "partitioned drops" true
    (Faults.apply f ~established:true ~size:20 = Faults.Drop);
  Faults.heal f;
  check Alcotest.bool "healed passes" true
    (Faults.apply f ~established:true ~size:20 = Faults.Pass);
  let m = Faults.meter f in
  check Alcotest.int "sum invariant" m.Net.dropped
    (m.Net.dropped_loss + m.Net.dropped_partition)

let test_faults_of_events () =
  (* The simulator emits a loss pick for every frame and may add a
     partition note for the same frame; one wire frame must consume
     exactly one event. *)
  let f =
    Faults.of_events
      [
        ("net.loss", 0);
        ("net.loss", 1);
        ("net.loss", 1); ("net.partition", 1);
        ("sched.pick", 3);
        ("net.loss", 0);
      ]
  in
  check Alcotest.int "four frames scripted" 4 (Faults.remaining f);
  check Alcotest.bool "frame 0 passes" true
    (Faults.apply f ~established:true ~size:1 = Faults.Pass);
  check Alcotest.bool "frame 1 lost" true
    (Faults.apply f ~established:true ~size:1 = Faults.Drop);
  check Alcotest.bool "frame 2 cut" true
    (Faults.apply f ~established:true ~size:1 = Faults.Drop);
  check Alcotest.bool "frame 3 passes" true
    (Faults.apply f ~established:true ~size:1 = Faults.Pass);
  let m = Faults.meter f in
  check Alcotest.int "one loss" 1 m.Net.dropped_loss;
  check Alcotest.int "one partition (folded pair)" 1 m.Net.dropped_partition

(* --- Codec.batch under adversarial frames ------------------------------ *)

let test_codec_batch_adversarial () =
  let c = Codec.batch ~max_items:8 Codec.int in
  let decode v = c.Codec.decode v in
  protocol_error "negative length" (fun () ->
      decode (Value.List [ Value.Int (-1) ]));
  protocol_error "oversized length" (fun () ->
      decode (Value.List (Value.Int 9 :: List.init 9 (fun i -> Value.Int i))));
  protocol_error "truncated batch" (fun () ->
      decode (Value.List [ Value.Int 3; Value.Int 0; Value.Int 1 ]));
  protocol_error "padded batch" (fun () ->
      decode (Value.List [ Value.Int 1; Value.Int 0; Value.Int 1 ]));
  protocol_error "garbage header" (fun () ->
      decode (Value.List [ Value.Str "n"; Value.Int 0 ]));
  protocol_error "not a batch at all" (fun () -> decode (Value.Str "x"));
  (* A huge claimed length must not pre-allocate anything: the check
     compares against the items actually present. *)
  protocol_error "forged huge length" (fun () ->
      decode (Value.List [ Value.Int max_int ]))

let prop_codec_batch_cut_mid_frame =
  (* End to end through the byte layer: an encoded batch cut anywhere
     mid-frame surfaces as a clean Protocol_error from Bin.decode — a
     partial batch can never be accepted. *)
  prop "codec.batch: cut-mid-frame and garbage headers stay protocol errors"
    ~count:40
    QCheck2.Gen.(list_size (int_bound 8) int)
    (fun xs ->
      let c = Codec.batch Codec.int in
      let bytes = Bin.encode (c.Codec.encode xs) in
      let ok = ref true in
      for n = 1 to String.length bytes - 1 do
        match Bin.decode (String.sub bytes 0 n) with
        | exception Value.Protocol_error _ -> ()
        | _ -> ok := false
      done;
      (match Bin.decode ("\x06\xde\xad\xbe\xef" ^ bytes) with
      | exception Value.Protocol_error _ -> ()
      | _ -> ok := false);
      (* round trip still holds on the intact frame *)
      (match c.Codec.decode (Bin.decode bytes) with
      | ys -> if ys <> xs then ok := false
      | exception _ -> ok := false);
      !ok)

(* --- Net: establishment accounting at the handshake boundary ----------- *)

let test_net_establishment_accounting () =
  let s = Sched.create () in
  let net = Net.create ~sched:s ~latency:(Net.Fixed 1.0) () in
  let a = Net.add_node net "a" and b = Net.add_node net "b" in
  Net.set_require_establishment net true;
  Net.set_loss_probability net 1.0;
  (* Before the link exists, a certain-loss coin must not even be
     flipped: the drop is a connectivity condition. *)
  Net.send net ~src:a ~dst:b ~size:10 (fun () -> ());
  Sched.run s;
  let m = Net.meter net in
  check Alcotest.int "pre-establishment: partition bucket" 1 m.Net.dropped_partition;
  check Alcotest.int "pre-establishment: loss bucket untouched" 0 m.Net.dropped_loss;
  Net.establish net a b;
  check Alcotest.bool "established" true (Net.is_established net a b);
  Net.send net ~src:a ~dst:b ~size:10 (fun () -> ());
  Sched.run s;
  let m = Net.meter net in
  check Alcotest.int "post-establishment: loss bucket" 1 m.Net.dropped_loss;
  check Alcotest.int "post-establishment: partition stays" 1 m.Net.dropped_partition;
  check Alcotest.int "sum invariant" m.Net.dropped
    (m.Net.dropped_loss + m.Net.dropped_partition);
  (* Establishment is independent of heal_all. *)
  Net.heal_all net;
  check Alcotest.bool "heal_all does not unestablish" true (Net.is_established net a b);
  (* Local traffic needs no establishment. *)
  Net.set_loss_probability net 0.0;
  let got = ref false in
  Net.send net ~src:a ~dst:a ~size:1 (fun () -> got := true);
  Sched.run s;
  check Alcotest.bool "same-node always established" true !got

(* --- Stall report: transport-blocked stages are not stalls ------------- *)

let test_stall_report_transport_exemption () =
  (* A proxy whose forwarded request is in flight to another shard is
     waiting on the wire, not stalled.  Pump only shard 0 so the
     round-trip can never complete: before the fix this reported the
     proxy as a stall. *)
  let c = Cluster.create Cluster.Deterministic ~shards:2 () in
  let k1 = Cluster.kernel c 1 in
  let target =
    Kernel.create_eject k1 ~type_name:"receiver" (fun _ctx ~passive:_ ->
        [ ("Ping", fun _ -> Value.Unit) ])
  in
  let puid = Cluster.proxy c ~shard:0 ~ops:[ "Ping" ] ~target:(1, target) in
  let k0 = Cluster.kernel c 0 in
  Kernel.spawn_driver k0 (fun ctx ->
      ignore (Kernel.invoke ctx puid ~op:"Ping" Value.Unit));
  Sched.run (Kernel.sched k0);
  check Alcotest.bool "proxy is in a transport wait" true
    (Kernel.in_transport_wait k0 puid);
  let stages = [ ("proxy", puid) ] in
  let stalled_on stalls =
    List.exists (fun s -> s.Pipeline.stage = Some "proxy") stalls
  in
  check Alcotest.bool "default report exempts the transport wait" false
    (stalled_on (Pipeline.stall_report k0 ~stages));
  check Alcotest.bool "still visible on demand" true
    (stalled_on (Pipeline.stall_report ~include_transport:true k0 ~stages));
  Kernel.crash k0 puid;
  check Alcotest.bool "crash clears the wait flag" false
    (Kernel.in_transport_wait k0 puid)

(* --- Multi-process equivalence ----------------------------------------- *)

let wire tr = Cluster.Wire { Cluster.wire_transport = tr; wire_faults = None; wire_auth = None }

let transports =
  [ ("unix", wire Transport.Unix_socket); ("tcp", wire Transport.Tcp) ]

let test_equivalence_fanin () =
  let spec = { Fanin.default with branches = 4; filters = 1; items = 12; work = 50 } in
  let digest (o : Fanin.outcome) =
    Array.map (fun vs -> String.concat "" (List.map Bin.encode vs)) o.Fanin.per_branch
  in
  let oracle = Fanin.run Cluster.Deterministic ~domains:3 spec in
  check Alcotest.int "oracle consumed all" (4 * 12) oracle.Fanin.consumed;
  List.iter
    (fun (name, mode) ->
      let o = Fanin.run mode ~domains:3 spec in
      check Alcotest.bool (name ^ ": eos clean") true o.Fanin.eos_clean;
      check
        Alcotest.(array string)
        (name ^ ": byte-identical per-branch streams")
        (digest oracle) (digest o);
      check
        Alcotest.(list (pair string int))
        (name ^ ": op counts") oracle.Fanin.op_counts o.Fanin.op_counts;
      check Alcotest.int (name ^ ": invocations")
        oracle.Fanin.meter.Kernel.Meter.invocations o.Fanin.meter.Kernel.Meter.invocations;
      check Alcotest.int (name ^ ": cross messages")
        oracle.Fanin.cross_messages o.Fanin.cross_messages)
    transports

let test_equivalence_f2 () =
  List.iter
    (fun domains ->
      let run mode = Distpipe.run_f2 mode ~domains ~filters:3 ~items:16 () in
      let oracle = run Cluster.Deterministic in
      check Alcotest.int "oracle consumed all" 16 oracle.Distpipe.consumed;
      List.iter
        (fun (name, mode) ->
          let o = run mode in
          let tag = Printf.sprintf "%s/%d shards" name domains in
          check Alcotest.string (tag ^ ": byte-identical item stream")
            oracle.Distpipe.stream o.Distpipe.stream;
          check Alcotest.int (tag ^ ": consumed") oracle.Distpipe.consumed
            o.Distpipe.consumed;
          check
            Alcotest.(list (pair string int))
            (tag ^ ": op counts") oracle.Distpipe.op_counts o.Distpipe.op_counts)
        transports)
    [ 2; 3 ]

let test_equivalence_f4 () =
  let run mode = Distpipe.run_f4 mode ~domains:3 ~items:16 () in
  let oracle = run Cluster.Deterministic in
  check Alcotest.int "oracle terminal lines" 16 (List.length oracle.Distpipe.terminal);
  List.iter
    (fun (name, mode) ->
      let o = run mode in
      check
        Alcotest.(list string)
        (name ^ ": terminal stream byte-identical")
        oracle.Distpipe.terminal o.Distpipe.terminal;
      (* The window interleaves its watched streams nondeterministically
         (one worker per stream); the per-label subsequences are the
         deterministic surface. *)
      check
        Alcotest.(list (pair string (list string)))
        (name ^ ": per-label report streams") oracle.Distpipe.reports o.Distpipe.reports;
      check Alcotest.int (name ^ ": invocations") oracle.Distpipe.invocations
        o.Distpipe.invocations)
    transports

(* --- Replay: a simulated fault schedule reproduces on real sockets ----- *)

let replay_dir = "_check"

(* 4 seq-stamped one-way frames offered to the injector and sent over a
   real socket; returns the seqs that made it across. *)
let send_over_wire faults =
  let srv = Transport.listen Transport.Unix_socket in
  flush stdout;
  flush stderr;
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let finish () = Sys.set_signal Sys.sigpipe prev in
  match Unix.fork () with
  | 0 ->
      (* Sender child: the injector sits between frame construction and
         the socket write — exactly where the hub applies it. *)
      let rc =
        try
          let fd = Transport.dial srv in
          for seq = 0 to 3 do
            let f =
              Frame.make ~kind:Frame.Request ~flags:Frame.flag_oneway ~src:1 ~dst:0
                ~seq
                (Bin.encode (Value.Int seq))
            in
            (match Faults.apply faults ~established:true ~size:(Frame.size f) with
            | Faults.Pass -> Frame.write fd f
            | Faults.Delay d ->
                Unix.sleepf d;
                Frame.write fd f
            | Faults.Drop -> ())
          done;
          Unix.close fd;
          0
        with _ -> 2
      in
      Unix._exit rc
  | pid ->
      Fun.protect ~finally:finish (fun () ->
          let conn = Transport.accept srv in
          let got = ref [] in
          (try
             while true do
               let f = Frame.read conn in
               got := f.Frame.hdr.Frame.seq :: !got
             done
           with End_of_file -> ());
          Unix.close conn;
          Transport.close_server srv;
          let _, status = Unix.waitpid [] pid in
          check Alcotest.bool "sender exited cleanly" true (status = Unix.WEXITED 0);
          List.rev !got)

let test_replay_reproduces_on_wire () =
  (* Find the lossy_ack mutant in simulation; its minimized replay file
     records the per-frame loss schedule as net.loss decisions.  Fed
     through Faults.of_events, the same schedule must knock the same
     number of frames off a real socket. *)
  let f =
    Check.find_bug ~budget:100 ~policy:Eden_check.Policy.Random ~seed:Seed.base
      ~replay_dir ~name:"wire-lossy-ack" (Workloads.lossy_ack ~mutant:true)
  in
  let path =
    match f.Check.replay_path with
    | Some p -> p
    | None -> Alcotest.fail "no replay file written"
  in
  let _meta, trace = Check.load_replay ~path in
  let events = Trace.decisions ~kind:"net.loss" trace in
  check Alcotest.int "one loss decision per send" 4 (List.length events);
  let drops = List.length (List.filter (fun (_, v) -> v = 1) events) in
  check Alcotest.bool "the minimized schedule drops something" true (drops >= 1);
  (* Oracle: a clean injector delivers everything. *)
  check
    Alcotest.(list int)
    "clean link delivers 0..3" [ 0; 1; 2; 3 ]
    (send_over_wire (Faults.none ()));
  (* The replayed schedule: the same frames go missing on the socket. *)
  let got = send_over_wire (Faults.of_events events) in
  check Alcotest.int "replayed schedule drops the same frames" (4 - drops)
    (List.length got);
  let expected =
    List.filteri (fun i _ -> List.nth events i = ("net.loss", 0)) [ 0; 1; 2; 3 ]
  in
  check Alcotest.(list int) "exactly the scripted seqs survive" expected got

(* --- Wire-mode fault injection end to end ------------------------------ *)

let test_wire_cluster_with_faults () =
  (* A Slow event must only delay, never change the byte stream. *)
  let spec = { Fanin.default with branches = 2; filters = 1; items = 6; work = 10 } in
  let digest (o : Fanin.outcome) =
    Array.map (fun vs -> String.concat "" (List.map Bin.encode vs)) o.Fanin.per_branch
  in
  let oracle = Fanin.run Cluster.Deterministic ~domains:2 spec in
  let faults = Faults.of_script [ Faults.Slow 0.02; Faults.Slow 0.01 ] in
  let o =
    Fanin.run
      (Cluster.Wire
         { Cluster.wire_transport = Transport.Unix_socket;
           wire_faults = Some faults;
           wire_auth = None })
      ~domains:2 spec
  in
  check Alcotest.(array string) "delays do not corrupt the stream" (digest oracle)
    (digest o);
  check Alcotest.int "both delays were exercised" 0 (Faults.remaining faults);
  let m = Faults.meter faults in
  check Alcotest.int "nothing dropped" 0 m.Net.dropped;
  check Alcotest.int "every offered frame delivered" m.Net.sent m.Net.delivered;
  check Alcotest.bool "the delayed frames are in the meter" true (m.Net.delivered >= 2)

let suite =
  [
    Alcotest.test_case "bin: trailing bytes rejected" `Quick test_bin_trailing_garbage;
    Alcotest.test_case "bin: hostile headers" `Quick test_bin_hostile_headers;
    Alcotest.test_case "bin: size law" `Quick test_bin_size_law;
    prop_bin_roundtrip;
    prop_bin_prefix_rejected;
    Alcotest.test_case "frame: malformed inputs" `Quick test_frame_malformed;
    Alcotest.test_case "frame: handshake validation" `Quick test_frame_handshake;
    prop_frame_roundtrip;
    Alcotest.test_case "faults: handshake-boundary accounting" `Quick
      test_faults_handshake_boundary;
    Alcotest.test_case "faults: of_events folds loss+partition pairs" `Quick
      test_faults_of_events;
    Alcotest.test_case "codec.batch: adversarial frames" `Quick
      test_codec_batch_adversarial;
    prop_codec_batch_cut_mid_frame;
    Alcotest.test_case "net: establishment accounting at the handshake boundary"
      `Quick test_net_establishment_accounting;
    Alcotest.test_case "stall report: transport-blocked stage exempted" `Quick
      test_stall_report_transport_exemption;
    Alcotest.test_case "multi-process equivalence: fanin over unix sockets and tcp"
      `Quick test_equivalence_fanin;
    Alcotest.test_case "multi-process equivalence: F2 pipeline" `Quick
      test_equivalence_f2;
    Alcotest.test_case "multi-process equivalence: F4 report topology" `Quick
      test_equivalence_f4;
    Alcotest.test_case "replay: simulated loss schedule reproduces on the wire"
      `Quick test_replay_reproduces_on_wire;
    Alcotest.test_case "wire cluster: injected delays keep streams intact" `Quick
      test_wire_cluster_with_faults;
  ]
