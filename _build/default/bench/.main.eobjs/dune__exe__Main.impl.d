bench/main.ml: Analyze Bechamel Benchmark Eden_kernel Eden_sched Eden_transput Eden_util Experiments Fun Hashtbl Instance Kernel List Measure Printf Staged String Sys Test Time Toolkit Value
