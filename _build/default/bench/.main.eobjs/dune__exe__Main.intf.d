bench/main.mli:
