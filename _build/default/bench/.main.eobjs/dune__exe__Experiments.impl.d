bench/experiments.ml: Eden_devices Eden_filters Eden_fs Eden_kernel Eden_net Eden_sched Eden_transput Eden_util Fun Kernel List Printf String Value
