(* Quickstart: build one pipeline under each transput discipline and
   watch the paper's invocation arithmetic come out of the meter.

   Run with: dune exec examples/quickstart.exe *)

open Eden_kernel
module T = Eden_transput
module Cat = Eden_filters.Catalog

let document =
  [
    "C     strip me: this is a comment";
    "      REAL X";
    "C     me too";
    "      X = X + 1";
    "      PRINT *, X";
  ]

let run_once discipline =
  (* Each run gets a fresh kernel: its own virtual clock, network and
     meters. *)
  let kernel = Kernel.create () in

  (* A generator for the source Eject, a consumer for the sink Eject.
     Both run inside their Ejects' worker processes. *)
  let remaining = ref document in
  let gen () =
    match !remaining with
    | [] -> None
    | line :: rest ->
        remaining := rest;
        Some (Value.Str line)
  in
  let received = ref [] in
  let consume v = received := Value.to_str v :: !received in

  let before = Kernel.Meter.snapshot kernel in
  let pipeline =
    T.Pipeline.build kernel discipline ~gen
      ~filters:[ Cat.strip_comments (); Cat.number_lines () ]
      ~consume
  in
  (* The driver fiber starts the pumping end and waits for end of
     stream; Kernel.run_driver drives the simulation to quiescence. *)
  Kernel.run_driver kernel (fun _ctx -> T.Pipeline.run pipeline);
  let meter = Kernel.Meter.diff (Kernel.Meter.snapshot kernel) before in

  Printf.printf "--- %s discipline ---\n" (T.Pipeline.discipline_name discipline);
  List.iter print_endline (List.rev !received);
  let n = List.length pipeline.T.Pipeline.filters in
  let pred = T.Pipeline.predict discipline ~n_filters:n in
  Printf.printf "ejects: %d (paper: %d)   invocations: %d (~%d per datum)\n\n"
    (T.Pipeline.entity_count pipeline)
    pred.T.Pipeline.entities meter.Kernel.Meter.invocations
    pred.T.Pipeline.invocations_per_datum

let () =
  print_endline "An Asymmetric Stream Communication System — quickstart\n";
  List.iter run_once T.Pipeline.all_disciplines;
  print_endline
    "Note how the read-only and write-only pipelines use half the\n\
     invocations of the conventional one, with no pipe Ejects."
