(* Distribution: the same pipeline, placed differently.

   Eden ran on several VAXen on a 10 Mbit Ethernet; invocation is
   location-independent, so a pipeline works identically whether its
   stages share a machine or not — only the virtual clock can tell the
   difference.  This example runs one pipeline three ways and prints
   what the meters and the clock saw.

   Run with: dune exec examples/distributed_pipeline.exe *)

open Eden_kernel
module T = Eden_transput
module Cat = Eden_filters.Catalog

let document = List.init 24 (fun i -> Printf.sprintf "record %02d payload" i)

let run ~label ~machines ~spread =
  let k =
    Kernel.create
      ~latency:(Eden_net.Net.Fixed 1.0) (* 1.0 between machines, 0.1 within *)
      ~nodes:(List.init machines (fun i -> Printf.sprintf "vax-%d" (i + 1)))
      ()
  in
  let rest = ref document in
  let gen () =
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some (Value.Str x)
  in
  let received = ref 0 in
  let before = Kernel.Meter.snapshot k in
  let nodes = if spread then Kernel.nodes k else [ List.hd (Kernel.nodes k) ] in
  let p =
    T.Pipeline.build k ~nodes ~capacity:4 T.Pipeline.Read_only ~gen
      ~filters:[ Cat.trim_trailing; Cat.upcase; Cat.number_lines () ]
      ~consume:(fun _ -> incr received)
  in
  Kernel.run_driver k (fun _ -> T.Pipeline.run p);
  let d = Kernel.Meter.diff (Kernel.Meter.snapshot k) before in
  Printf.printf "%-34s %3d items  %4d invocations  makespan %7.2f\n" label !received
    d.Kernel.Meter.invocations
    (Eden_sched.Sched.now (Kernel.sched k))

let () =
  print_endline "The same 3-filter pipeline under three placements:\n";
  run ~label:"one machine (all local)" ~machines:1 ~spread:false;
  run ~label:"five machines, stages co-located" ~machines:5 ~spread:false;
  run ~label:"five machines, one stage each" ~machines:5 ~spread:true;
  print_endline
    "\nLocation-independence: identical output and identical invocation\n\
     counts everywhere; only elapsed virtual time changes, because each\n\
     datum now crosses the (10x slower) network at every hop.  The paper's\n\
     economy argument is exactly about halving those crossings."
