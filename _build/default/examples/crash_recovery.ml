(* Checkpoint and recovery (§1).

   An Eject's passive representation is "a data structure designed to be
   durable across system crashes ... sufficient to enable the Eject they
   represent to re-construct itself in a consistent state".  Here a
   directory full of capabilities is crashed mid-session and carries on;
   a never-checkpointed counter loses its state, showing why
   checkpointing matters.

   Run with: dune exec examples/crash_recovery.exe *)

open Eden_kernel
module Dir = Eden_dirsvc.Directory

let () =
  let kernel = Kernel.create () in
  let dir = Dir.create kernel () in

  (* A counter that never checkpoints, for contrast. *)
  let forgetful =
    Kernel.create_eject kernel ~type_name:"forgetful-counter" (fun _ctx ~passive:_ ->
        let n = ref 0 in
        [
          ( "Incr",
            fun _ ->
              incr n;
              Value.Int !n );
        ])
  in
  (* A counter that checkpoints every change. *)
  let durable =
    Kernel.create_eject kernel ~type_name:"durable-counter" (fun ctx ~passive ->
        let n = ref (match passive with Some v -> Value.to_int v | None -> 0) in
        [
          ( "Incr",
            fun _ ->
              incr n;
              Kernel.checkpoint ctx (Value.Int !n);
              Value.Int !n );
        ])
  in

  let target = Kernel.create_eject kernel ~type_name:"treasure" (fun _ctx ~passive:_ -> []) in

  Kernel.run_driver kernel (fun ctx ->
      Dir.add_entry ctx ~dir "treasure" target;
      for _ = 1 to 3 do
        ignore (Kernel.call ctx forgetful ~op:"Incr" Value.Unit);
        ignore (Kernel.call ctx durable ~op:"Incr" Value.Unit)
      done;
      Printf.printf "before the crash: both counters at 3, directory has 1 entry\n";

      (* Lightning strikes all three Ejects. *)
      Kernel.crash kernel forgetful;
      Kernel.crash kernel durable;
      Kernel.crash kernel dir;
      Printf.printf "crash! all three Ejects lose their volatile state\n\n";

      (* Invoking a passive Eject reactivates it from its last
         checkpoint (or from nothing). *)
      let f = Value.to_int (Kernel.call ctx forgetful ~op:"Incr" Value.Unit) in
      let d = Value.to_int (Kernel.call ctx durable ~op:"Incr" Value.Unit) in
      Printf.printf "forgetful counter after crash + Incr: %d   (state lost)\n" f;
      Printf.printf "durable counter after crash + Incr:   %d   (recovered from checkpoint)\n" d;
      match Dir.lookup ctx ~dir "treasure" with
      | Some uid ->
          Printf.printf "directory still maps \"treasure\" -> %s (capabilities survive)\n"
            (Uid.to_string uid)
      | None -> print_endline "directory lost the treasure!");

  Printf.printf "\ncheckpoints taken by the durable counter: %d\n"
    (List.length (Kernel.checkpoints kernel durable))
