(* The §4 printing scenario, verbatim:

     "A file could be printed simply by requesting the printer server
      to read from the file.  If a paginated listing were required, the
      printer server would be requested to read from the paginator, and
      the paginator to read from the file."

   No Write ever happens at the inter-Eject level: the printer pumps,
   the paginator and the UnixFile Eject respond.

   Run with: dune exec examples/paginated_printing.exe *)

open Eden_kernel
module T = Eden_transput
module Fs = Eden_fs.Unix_fs
module Fse = Eden_fs.Fs_eject
module Cat = Eden_filters.Catalog
module Dev = Eden_devices.Devices

let () =
  let kernel = Kernel.create () in

  (* The machine's Unix file system and its bootstrap Eject (§7). *)
  let fs = Fs.create () in
  let fse = Fse.create kernel fs in
  Fs.mkdir_p fs "/usr/alice";
  Fs.write_file fs "/usr/alice/report.txt"
    (Eden_util.Text.join_lines
       (List.init 7 (fun i -> Printf.sprintf "finding %d: streams are asymmetric" (i + 1))));

  (* A printer server: a device that performs active input. *)
  let printer = Dev.printer kernel ~rate:0.5 () in

  Kernel.run_driver kernel (fun ctx ->
      (* Plain printing: ask the printer to read from the file. *)
      let stream = Fse.new_stream ctx ~fs:fse "/usr/alice/report.txt" in
      Dev.print ctx ~printer:printer.Dev.puid stream;

      (* Paginated printing: interpose a paginator Eject.  The paginator
         is told only where its INPUT comes from; its output goes to
         whoever asks (the printer). *)
      let stream2 = Fse.new_stream ctx ~fs:fse "/usr/alice/report.txt" in
      let paginator =
        T.Stage.filter_ro kernel ~name:"paginator" ~upstream:stream2
          (Cat.paginate ~lines_per_page:3 ~title:"report.txt" ())
      in
      Dev.print ctx ~printer:printer.Dev.puid paginator);

  Printf.printf "printer output (%d jobs, %.1f virtual seconds):\n\n"
    (printer.Dev.jobs_completed ())
    (Eden_sched.Sched.now (Kernel.sched kernel));
  List.iter print_endline (printer.Dev.paper ())
