(* Directories are stream sources (§2).

   A directory's List operation "prepares the directory to receive a
   number of Read invocations, which transfer a printable representation
   of the directory's contents to the reader" — so a directory can feed
   a filter pipeline like any file.  The Directory Concatenator provides
   PATH-style lookup and is behaviourally substitutable for a directory.

   Run with: dune exec examples/directory_listing.exe *)

open Eden_kernel
module T = Eden_transput
module Dir = Eden_dirsvc.Directory
module Cat = Eden_filters.Catalog
module Dev = Eden_devices.Devices

let () =
  let kernel = Kernel.create () in
  let home = Dir.create kernel () in
  let system = Dir.create kernel () in
  let path = Dir.concatenator kernel [ home; system ] in

  (* A few Ejects to catalogue. *)
  let tool name =
    Kernel.create_eject kernel ~type_name:name (fun _ctx ~passive:_ ->
        [ ("Describe", fun _ -> Value.Str ("I am " ^ name)) ])
  in
  let my_editor = tool "my-editor" in
  let sys_editor = tool "system-editor" in
  let compiler = tool "compiler" in

  Kernel.run_driver kernel (fun ctx ->
      Dir.add_entry ctx ~dir:home "editor" my_editor;
      Dir.add_entry ctx ~dir:system "editor" sys_editor;
      Dir.add_entry ctx ~dir:system "compiler" compiler;

      (* PATH-style lookup: home shadows system. *)
      (match Dir.lookup ctx ~dir:path "editor" with
      | Some uid ->
          let reply = Kernel.call ctx uid ~op:"Describe" Value.Unit in
          Printf.printf "lookup \"editor\" through PATH -> %s\n" (Value.to_str reply)
      | None -> print_endline "editor not found!?");
      (match Dir.lookup ctx ~dir:path "compiler" with
      | Some uid ->
          let reply = Kernel.call ctx uid ~op:"Describe" Value.Unit in
          Printf.printf "lookup \"compiler\" through PATH -> %s\n\n" (Value.to_str reply)
      | None -> print_endline "compiler not found!?");

      (* Stream the system directory's listing through an upcase filter
         to a terminal: List hands back a capability channel, and from
         there it is an ordinary read-only pipeline. *)
      let chan = T.Channel.of_value (Kernel.call ctx system ~op:Dir.op_list Value.Unit) in
      let shouter =
        T.Stage.filter_ro kernel ~name:"shouter" ~upstream:system ~upstream_channel:chan
          Cat.upcase
      in
      let terminal = Dev.terminal_ro kernel ~upstream:shouter () in
      Kernel.poke kernel terminal.Dev.uid;
      Eden_sched.Ivar.read terminal.Dev.done_;
      print_endline "system directory, shouted:";
      List.iter (Printf.printf "  %s\n") (terminal.Dev.lines ()))
