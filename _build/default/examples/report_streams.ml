(* Report streams: the same multi-output pipeline built both ways.

   Figure 3 (write-only): the source and filter F1 push their reports
   to a shared window; the main stream is pushed stage to stage.

   Figure 4 (read-only + channel identifiers): the terminal issues
   Read(Output) requests and the window issues Read(ReportStream)
   requests; nobody pushes anything.

   Run with: dune exec examples/report_streams.exe *)

open Eden_kernel
module T = Eden_transput
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module Dev = Eden_devices.Devices

let input = [ "ALPHA particle"; "beta ray"; "GAMMA burst"; "delta wave"; "epsilon minor" ]

let gen () =
  let rest = ref input in
  fun () ->
    match !rest with
    | [] -> None
    | x :: tl ->
        rest := tl;
        Some (Value.Str x)

let show title term window =
  Printf.printf "--- %s ---\nterminal:\n" title;
  List.iter (Printf.printf "  %s\n") (term : string list);
  Printf.printf "report window:\n";
  List.iter (Printf.printf "  %s\n") (window : string list);
  print_newline ()

let figure3 () =
  let kernel = Kernel.create () in
  let terminal = Dev.terminal_wo kernel () in
  let window = Dev.report_window_wo kernel ~writers:2 () in
  (* Write-only pipelines are wired sink-first: every stage must know
     its downstream. *)
  let f2 = T.Stage.filter_wo kernel ~name:"F2" ~downstream:terminal.Dev.uid Cat.downcase in
  let f1 =
    Report.filter_wo kernel ~name:"F1" ~downstream:f2 ~report_to:window.Dev.uid
      (Report.with_progress ~every:2 ~label:"F1" (Cat.grep " "))
  in
  let source =
    Report.source_wo kernel ~name:"source" ~downstream:f1 ~report_to:window.Dev.uid
      ~label:"source" (gen ())
  in
  Kernel.poke kernel source;
  Kernel.run kernel;
  show "Figure 3: write-only, reports pushed" (terminal.Dev.lines ()) (window.Dev.lines ())

let figure4 () =
  let kernel = Kernel.create () in
  (* Read-only pipelines are wired source-first: every stage must know
     its upstream; outputs go to whoever asks, on the channel they were
     told to use. *)
  let source = Report.source_ro kernel ~name:"source" ~label:"source" (gen ()) in
  let f1 =
    Report.filter_ro kernel ~name:"F1" ~upstream:source
      (Report.with_progress ~every:2 ~label:"F1" (Cat.grep " "))
  in
  let f2 = T.Stage.filter_ro kernel ~name:"F2" ~upstream:f1 Cat.downcase in
  let terminal = Dev.terminal_ro kernel ~upstream:f2 () in
  let window =
    Dev.report_window_ro kernel
      ~watch:[ ("source", source, T.Channel.report); ("F1", f1, T.Channel.report) ]
      ()
  in
  Kernel.poke kernel terminal.Dev.uid;
  Kernel.poke kernel window.Dev.uid;
  Kernel.run kernel;
  show "Figure 4: read-only, reports read on channel identifiers" (terminal.Dev.lines ())
    (window.Dev.lines ())

let () =
  figure3 ();
  figure4 ();
  print_endline
    "Same topology, dual initiative: in Figure 3 producers know their\n\
     consumers; in Figure 4 consumers know their producers (and which\n\
     channel to name)."
