(* Text tools: the §3/§5 utilities working together.

   A spelling pass, a stream edit driven by a command stream (the §5
   two-input editor), and a diff of before/after — all as Ejects in the
   read-only discipline.

   Run with: dune exec examples/text_tools.exe *)

open Eden_kernel
module T = Eden_transput
module Cat = Eden_filters.Catalog
module Sed = Eden_filters.Sed
module Cmp = Eden_filters.Compare
module Dev = Eden_devices.Devices

let document =
  [
    "the quick brown fox";
    "jumps ovr the lazy dog";
    "teh end";
  ]

let dictionary =
  [ "the"; "quick"; "brown"; "fox"; "jumps"; "over"; "lazy"; "dog"; "end" ]

let drain ctx uid =
  let pull = T.Pull.connect ctx uid in
  let acc = ref [] in
  T.Pull.iter (fun v -> acc := Value.to_str v :: !acc) pull;
  List.rev !acc

let () =
  let k = Kernel.create () in
  Kernel.run_driver k (fun ctx ->
      (* 1. Spell-check: a filter that emits only the misspelled words. *)
      let src1 = Dev.text_source k document in
      let spell = T.Stage.filter_ro k ~name:"spell" ~upstream:src1 (Cat.spell ~dictionary) in
      let misspelled = drain ctx spell in
      print_endline "spell(1) finds:";
      List.iter (Printf.printf "  %s\n") misspelled;

      (* 2. Fix them with the two-input stream editor: one input carries
         the corrections, the other the text. *)
      let corrections = Dev.text_source k ~name:"commands" [ "s/ovr/over/g"; "s/teh/the/g" ] in
      let src2 = Dev.text_source k document in
      let editor =
        Sed.two_input_stage k
          ~commands:(corrections, T.Channel.output)
          ~text:(src2, T.Channel.output)
          ()
      in
      let fixed = drain ctx editor in
      print_endline "\nafter the sed pass:";
      List.iter (Printf.printf "  %s\n") fixed;

      (* 3. Diff original vs fixed, as a two-input comparison Eject. *)
      let left = Dev.text_source k document in
      let right = Dev.text_source k fixed in
      let d =
        Cmp.diff_stage k ~left:(left, T.Channel.output) ~right:(right, T.Channel.output) ()
      in
      print_endline "\ndiff original fixed:";
      List.iter (Printf.printf "  %s\n") (drain ctx d))
