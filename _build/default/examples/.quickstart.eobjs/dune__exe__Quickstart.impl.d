examples/quickstart.ml: Eden_filters Eden_kernel Eden_transput Kernel List Printf Value
