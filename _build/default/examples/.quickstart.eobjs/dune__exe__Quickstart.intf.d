examples/quickstart.mli:
