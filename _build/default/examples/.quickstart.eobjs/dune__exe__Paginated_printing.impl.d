examples/paginated_printing.ml: Eden_devices Eden_filters Eden_fs Eden_kernel Eden_sched Eden_transput Eden_util Kernel List Printf
