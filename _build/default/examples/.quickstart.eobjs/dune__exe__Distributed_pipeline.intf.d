examples/distributed_pipeline.mli:
