examples/paginated_printing.mli:
