examples/report_streams.mli:
