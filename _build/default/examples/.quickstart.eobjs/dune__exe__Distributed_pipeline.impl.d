examples/distributed_pipeline.ml: Eden_filters Eden_kernel Eden_net Eden_sched Eden_transput Kernel List Printf Value
