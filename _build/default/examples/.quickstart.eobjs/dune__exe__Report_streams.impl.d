examples/report_streams.ml: Eden_devices Eden_filters Eden_kernel Eden_transput Kernel List Printf Value
