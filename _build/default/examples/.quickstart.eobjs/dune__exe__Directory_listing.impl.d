examples/directory_listing.ml: Eden_devices Eden_dirsvc Eden_filters Eden_kernel Eden_sched Eden_transput Kernel List Printf Value
