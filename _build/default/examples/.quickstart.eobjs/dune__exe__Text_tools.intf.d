examples/text_tools.mli:
