examples/crash_recovery.ml: Eden_dirsvc Eden_kernel Kernel List Printf Uid Value
