examples/directory_listing.mli:
