(* Device Ejects: terminals, printer server, sources, report windows.
   Includes the Figure 3 and Figure 4 configurations end to end. *)

open Eden_kernel
module Dev = Eden_devices.Devices
module Cat = Eden_filters.Catalog
module Report = Eden_filters.Report
module T = Eden_transput

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let test_terminal_pumps () =
  let k = Kernel.create () in
  let src = Dev.text_source k [ "hello"; "world" ] in
  let term = Dev.terminal_ro k ~upstream:src () in
  Kernel.poke k term.Dev.uid;
  Kernel.run k;
  check lines_t "rendered" [ "hello"; "world" ] (term.Dev.lines ());
  Alcotest.(check bool) "done" true (Eden_sched.Ivar.is_filled term.Dev.done_)

let test_terminal_rate_paces_pipeline () =
  (* A slow terminal paces the whole (lazy) pipeline: total time ≈
     items × rate. *)
  let k = Kernel.create ~latency:(Eden_net.Net.Fixed 0.001) () in
  let src = Dev.counter_source k ~limit:5 () in
  let term = Dev.terminal_ro k ~rate:10.0 ~upstream:src () in
  Kernel.poke k term.Dev.uid;
  Kernel.run k;
  check Alcotest.int "all rendered" 5 (List.length (term.Dev.lines ()));
  Alcotest.(check bool) "device-paced" true (Eden_sched.Sched.now (Kernel.sched k) >= 50.0)

let test_terminal_wo () =
  let k = Kernel.create () in
  let term = Dev.terminal_wo k () in
  let src = T.Stage.source_wo k ~downstream:term.Dev.uid
      (let n = ref 0 in
       fun () ->
         incr n;
         if !n <= 3 then Some (Value.Str (string_of_int !n)) else None)
  in
  Kernel.poke k src;
  Kernel.run k;
  check lines_t "rendered" [ "1"; "2"; "3" ] (term.Dev.lines ())

let test_null_sink_discards () =
  let k = Kernel.create () in
  let src = Dev.text_source k [ "a"; "b" ] in
  let null = Dev.null_sink_ro k ~upstream:src () in
  Kernel.poke k null.Dev.uid;
  Kernel.run k;
  check lines_t "nothing kept" [] (null.Dev.lines ());
  Alcotest.(check bool) "but stream drained" true (Eden_sched.Ivar.is_filled null.Dev.done_)

let test_date_source_reflects_virtual_time () =
  let k = Kernel.create () in
  let date = Dev.date_source k () in
  let first = ref "" and second = ref "" in
  Kernel.run_driver k (fun ctx ->
      let pull = T.Pull.connect ctx date in
      (match T.Pull.read pull with Some v -> first := Value.to_str v | None -> ());
      Eden_sched.Sched.sleep 42.0;
      match T.Pull.read pull with Some v -> second := Value.to_str v | None -> ());
  Alcotest.(check bool) "lines differ as time passes" true (!first <> !second);
  Alcotest.(check bool) "mentions virtual time" true
    (Eden_util.Text.is_prefix ~prefix:"virtual time" !first)

let test_counter_source_ends () =
  let k = Kernel.create () in
  let src = Dev.counter_source k ~prefix:"n" ~limit:3 () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = T.Pull.connect ctx src in
      T.Pull.iter (fun v -> got := Value.to_str v :: !got) pull);
  check lines_t "numbered then eos" [ "n1"; "n2"; "n3" ] (List.rev !got)

let test_random_source_deterministic () =
  let read_all seed =
    let k = Kernel.create () in
    let src = Dev.random_source k ~seed ~limit:5 () in
    let out = ref [] in
    Kernel.run_driver k (fun ctx ->
        T.Pull.iter (fun v -> out := Value.to_str v :: !out) (T.Pull.connect ctx src));
    List.rev !out
  in
  let a = read_all 1L and b = read_all 1L and c = read_all 2L in
  check lines_t "same seed same text" a b;
  Alcotest.(check bool) "different seed differs" true (a <> c);
  check Alcotest.int "limit honoured" 5 (List.length a)

let test_printer_prints_file_stream () =
  (* §4: "A file could be printed simply by requesting the printer
     server to read from the file." *)
  let k = Kernel.create () in
  let fs = Eden_fs.Unix_fs.create () in
  let fse = Eden_fs.Fs_eject.create k fs in
  Eden_fs.Unix_fs.write_file fs "/doc" "page one\npage two\n";
  let pr = Dev.printer k () in
  Kernel.run_driver k (fun ctx ->
      let stream = Eden_fs.Fs_eject.new_stream ctx ~fs:fse "/doc" in
      Dev.print ctx ~printer:pr.Dev.puid stream);
  check lines_t "on paper" [ "page one"; "page two" ] (pr.Dev.paper ());
  check Alcotest.int "one job" 1 (pr.Dev.jobs_completed ())

let test_printer_paginated_listing () =
  (* §4: "If a paginated listing were required, the printer server would
     be requested to read from the paginator, and the paginator to read
     from the file." *)
  let k = Kernel.create () in
  let src = Dev.text_source k [ "a"; "b"; "c" ] in
  let paginator =
    T.Stage.filter_ro k ~name:"paginator" ~upstream:src
      (Cat.paginate ~lines_per_page:2 ~title:"listing" ())
  in
  let pr = Dev.printer k () in
  Kernel.run_driver k (fun ctx -> Dev.print ctx ~printer:pr.Dev.puid paginator);
  check lines_t "paginated on paper"
    [ "==== listing page 1 ===="; "a"; "b"; "==== listing page 2 ===="; "c" ]
    (pr.Dev.paper ())

let test_printer_serialises_jobs () =
  let k = Kernel.create () in
  let s1 = Dev.text_source k [ "j1-a"; "j1-b" ] in
  let s2 = Dev.text_source k [ "j2-a"; "j2-b" ] in
  let pr = Dev.printer k ~rate:1.0 () in
  Kernel.run_driver k (fun ctx ->
      let iv1 = Kernel.invoke_async ctx pr.Dev.puid ~op:Dev.op_print (Value.Uid s1) in
      let iv2 = Kernel.invoke_async ctx pr.Dev.puid ~op:Dev.op_print (Value.Uid s2) in
      ignore (Eden_sched.Ivar.read iv1);
      ignore (Eden_sched.Ivar.read iv2));
  check Alcotest.int "both jobs done" 2 (pr.Dev.jobs_completed ());
  (* Jobs must not interleave on paper. *)
  match pr.Dev.paper () with
  | [ a1; a2; b1; b2 ] ->
      let prefix s = String.sub s 0 2 in
      Alcotest.(check bool) "first job contiguous" true (prefix a1 = prefix a2);
      Alcotest.(check bool) "second job contiguous" true (prefix b1 = prefix b2)
  | other -> Alcotest.failf "expected four lines, got %d" (List.length other)

(* --- Figure 3: write-only discipline with report streams ------------- *)

let test_figure3_write_only_reports () =
  let k = Kernel.create () in
  let term = Dev.terminal_wo k () in
  let window = Dev.report_window_wo k ~writers:2 () in
  (* Build backwards: F3 -> terminal; F2 -> F3; F1 (reports) -> F2;
     source (reports) -> F1. *)
  let f3 = T.Stage.filter_wo k ~name:"F3" ~downstream:term.Dev.uid Cat.upcase in
  let f2 = T.Stage.filter_wo k ~name:"F2" ~downstream:f3 (Cat.grep_v "skip") in
  let f1 =
    Report.filter_wo k ~name:"F1" ~downstream:f2 ~report_to:window.Dev.uid
      (Report.with_progress ~every:2 ~label:"F1" T.Transform.identity)
  in
  let src =
    Report.source_wo k ~name:"source" ~downstream:f1 ~report_to:window.Dev.uid ~label:"source"
      (let rest = ref [ "keep one"; "skip me"; "keep two" ] in
       fun () ->
         match !rest with
         | [] -> None
         | x :: tl ->
             rest := tl;
             Some (Value.Str x))
  in
  Kernel.poke k src;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  check lines_t "terminal gets main stream" [ "KEEP ONE"; "KEEP TWO" ] (term.Dev.lines ());
  Alcotest.(check bool) "window closed after both reporters" true
    (Eden_sched.Ivar.is_filled window.Dev.done_);
  let wl = window.Dev.lines () in
  Alcotest.(check bool) "window saw source reports" true
    (List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"source:" l) wl);
  Alcotest.(check bool) "window saw F1 reports" true
    (List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"F1:" l) wl)

(* --- Figure 4: read-only discipline with channel identifiers --------- *)

let test_figure4_read_only_channels () =
  let k = Kernel.create () in
  let src =
    Report.source_ro k ~name:"source" ~label:"source"
      (let rest = ref [ "alpha"; "beta"; "gamma" ] in
       fun () ->
         match !rest with
         | [] -> None
         | x :: tl ->
             rest := tl;
             Some (Value.Str x))
  in
  let f1 =
    Report.filter_ro k ~name:"F1" ~upstream:src
      (Report.with_progress ~every:1 ~label:"F1" Cat.upcase)
  in
  let f2 = T.Stage.filter_ro k ~name:"F2" ~upstream:f1 (Cat.grep_v "BETA") in
  let term = Dev.terminal_ro k ~upstream:f2 () in
  let window =
    Dev.report_window_ro k
      ~watch:[ ("source", src, T.Channel.report); ("F1", f1, T.Channel.report) ]
      ()
  in
  Kernel.poke k term.Dev.uid;
  Kernel.poke k window.Dev.uid;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  check lines_t "terminal output" [ "ALPHA"; "GAMMA" ] (term.Dev.lines ());
  Alcotest.(check bool) "window done when streams end" true
    (Eden_sched.Ivar.is_filled window.Dev.done_);
  let wl = window.Dev.lines () in
  Alcotest.(check bool) "source reports labelled" true
    (List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"source |" l) wl);
  Alcotest.(check bool) "F1 reports labelled" true
    (List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"F1 |" l) wl)

let test_window_wo_rejects_wrong_channel () =
  let k = Kernel.create () in
  let window = Dev.report_window_wo k ~writers:1 () in
  let refused = ref false in
  Kernel.run_driver k (fun ctx ->
      match
        Kernel.invoke ctx window.Dev.uid ~op:T.Proto.deposit_op
          (T.Proto.deposit_request T.Channel.output ~eos:false [ Value.Str "x" ])
      with
      | Error _ -> refused := true
      | Ok _ -> ());
  Alcotest.(check bool) "only report channel accepted" true !refused

let suite =
  [
    ("terminal pumps", `Quick, test_terminal_pumps);
    ("terminal rate paces pipeline", `Quick, test_terminal_rate_paces_pipeline);
    ("terminal write-only", `Quick, test_terminal_wo);
    ("null sink discards", `Quick, test_null_sink_discards);
    ("date source uses virtual time", `Quick, test_date_source_reflects_virtual_time);
    ("counter source ends", `Quick, test_counter_source_ends);
    ("random source deterministic", `Quick, test_random_source_deterministic);
    ("printer prints a file stream", `Quick, test_printer_prints_file_stream);
    ("printer paginated listing", `Quick, test_printer_paginated_listing);
    ("printer serialises jobs", `Quick, test_printer_serialises_jobs);
    ("figure 3: write-only with reports", `Quick, test_figure3_write_only_reports);
    ("figure 4: read-only with channels", `Quick, test_figure4_read_only_channels);
    ("window rejects wrong channel", `Quick, test_window_wo_rejects_wrong_channel);
  ]
