(* Directory Ejects: lookup algebra, the streaming List protocol,
   checkpoint recovery, and the concatenator. *)

open Eden_kernel
module Dir = Eden_dirsvc.Directory

let check = Alcotest.check

let echo k name =
  Kernel.create_eject k ~type_name:name (fun _ctx ~passive:_ -> [ ("Echo", Fun.id) ])

let test_add_lookup () =
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let target = echo k "file" in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "hello" target;
      found := Dir.lookup ctx ~dir "hello");
  match !found with
  | Some uid -> Alcotest.(check bool) "same uid" true (Uid.equal uid target)
  | None -> Alcotest.fail "lookup failed"

let test_lookup_missing () =
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let found = ref (Some (Uid.fresh (Uid.generator ~seed:0L))) in
  Kernel.run_driver k (fun ctx -> found := Dir.lookup ctx ~dir "ghost");
  Alcotest.(check bool) "absent" true (!found = None)

let test_duplicate_add_refused () =
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let t1 = echo k "a" and t2 = echo k "b" in
  let refused = ref false in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "x" t1;
      try Dir.add_entry ctx ~dir "x" t2 with Kernel.Eden_error _ -> refused := true);
  Alcotest.(check bool) "refused" true !refused

let test_delete_entry () =
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let t = echo k "a" in
  let after = ref (Some t) in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "x" t;
      Dir.delete_entry ctx ~dir "x";
      after := Dir.lookup ctx ~dir "x");
  Alcotest.(check bool) "gone" true (!after = None)

let test_list_streams_sorted () =
  (* §2: List prepares the directory to answer Read invocations — the
     directory behaves as a stream source. *)
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let lines = ref [] in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "zebra" (echo k "z");
      Dir.add_entry ctx ~dir "apple" (echo k "a");
      Dir.add_entry ctx ~dir "mango" (echo k "m");
      lines := Dir.list_lines ctx ~dir);
  check Alcotest.int "three lines" 3 (List.length !lines);
  let names = List.map (fun l -> List.hd (Eden_util.Text.words l)) !lines in
  check Alcotest.(list string) "sorted" [ "apple"; "mango"; "zebra" ] names

let test_list_twice_independent () =
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let l1 = ref [] and l2 = ref [] in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "only" (echo k "o");
      l1 := Dir.list_lines ctx ~dir;
      l2 := Dir.list_lines ctx ~dir);
  check Alcotest.int "first listing" 1 (List.length !l1);
  check Alcotest.(list string) "second listing equal" !l1 !l2

let test_directory_survives_crash () =
  (* Directories checkpoint after each mutation: entries — including
     the capabilities they hold — come back after a crash. *)
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let target = echo k "precious" in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "precious" target;
      Kernel.crash k dir;
      found := Dir.lookup ctx ~dir "precious");
  match !found with
  | Some uid -> Alcotest.(check bool) "capability recovered" true (Uid.equal uid target)
  | None -> Alcotest.fail "entry lost in crash"

let test_deleted_entry_stays_deleted_after_crash () =
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "tmp" (echo k "t");
      Dir.delete_entry ctx ~dir "tmp";
      Kernel.crash k dir;
      found := Dir.lookup ctx ~dir "tmp");
  Alcotest.(check bool) "still gone" true (!found = None)

let test_concatenator_path_order () =
  (* §2: the concatenator yields the same result as looking up each
     directory in turn until the name is found. *)
  let k = Kernel.create () in
  let d1 = Dir.create k () and d2 = Dir.create k () in
  let first = echo k "first" and second = echo k "second" and only2 = echo k "only2" in
  let cat = Dir.concatenator k [ d1; d2 ] in
  let got_shadowed = ref None and got_only2 = ref None and got_missing = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir:d1 "shadowed" first;
      Dir.add_entry ctx ~dir:d2 "shadowed" second;
      Dir.add_entry ctx ~dir:d2 "only2" only2;
      got_shadowed := Dir.lookup ctx ~dir:cat "shadowed";
      got_only2 := Dir.lookup ctx ~dir:cat "only2";
      got_missing := Dir.lookup ctx ~dir:cat "missing");
  (match !got_shadowed with
  | Some uid -> Alcotest.(check bool) "earlier dir wins" true (Uid.equal uid first)
  | None -> Alcotest.fail "shadowed not found");
  (match !got_only2 with
  | Some uid -> Alcotest.(check bool) "falls through" true (Uid.equal uid only2)
  | None -> Alcotest.fail "only2 not found");
  Alcotest.(check bool) "missing stays missing" true (!got_missing = None)

let test_concatenator_is_behaviourally_a_directory () =
  (* Behavioural compatibility (§2): any client using only Lookup can
     use a concatenator where it expects a directory — here, a nested
     lookup through a concatenator of concatenators. *)
  let k = Kernel.create () in
  let leaf = Dir.create k () in
  let target = echo k "deep" in
  let cat1 = Dir.concatenator k [ leaf ] in
  let cat2 = Dir.concatenator k [ cat1 ] in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir:leaf "deep" target;
      found := Dir.lookup ctx ~dir:cat2 "deep");
  match !found with
  | Some uid -> Alcotest.(check bool) "nested lookup" true (Uid.equal uid target)
  | None -> Alcotest.fail "not found through nested concatenators"

let test_directories_nest () =
  (* "Arbitrary networks of directories can be constructed" (§2). *)
  let k = Kernel.create () in
  let root = Dir.create k () and sub = Dir.create k () in
  let f = echo k "f" in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir:root "sub" sub;
      Dir.add_entry ctx ~dir:sub "f" f;
      match Dir.lookup ctx ~dir:root "sub" with
      | Some sub' -> found := Dir.lookup ctx ~dir:sub' "f"
      | None -> ());
  match !found with
  | Some uid -> Alcotest.(check bool) "two-level lookup" true (Uid.equal uid f)
  | None -> Alcotest.fail "nested entry not found"

let suite =
  [
    ("add + lookup", `Quick, test_add_lookup);
    ("lookup missing", `Quick, test_lookup_missing);
    ("duplicate add refused", `Quick, test_duplicate_add_refused);
    ("delete entry", `Quick, test_delete_entry);
    ("list streams sorted", `Quick, test_list_streams_sorted);
    ("list twice independent", `Quick, test_list_twice_independent);
    ("survives crash via checkpoint", `Quick, test_directory_survives_crash);
    ("delete survives crash", `Quick, test_deleted_entry_stays_deleted_after_crash);
    ("concatenator path order", `Quick, test_concatenator_path_order);
    ("concatenator behavioural compat", `Quick, test_concatenator_is_behaviourally_a_directory);
    ("directories nest", `Quick, test_directories_nest);
  ]
