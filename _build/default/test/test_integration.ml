(* Capstone integration: the whole stack in one scenario.

   Three machines.  Machine A holds a Unix file system with a Fortran
   source file; machine B runs the editing; machine C hosts the devices.
   A user namespace maps names to everything.  The job: strip comments,
   apply a sed script stored in an Eden-native file, paginate, and print
   — while a report window watches progress — then diff the result
   against a golden Eden file, and survive a directory crash on the way. *)

open Eden_kernel
module T = Eden_transput
module Fs = Eden_fs.Unix_fs
module Fse = Eden_fs.Fs_eject
module File = Eden_edenfs.Eden_file
module Dir = Eden_dirsvc.Directory
module Ns = Eden_dirsvc.Namespace
module Cat = Eden_filters.Catalog
module Sed = Eden_filters.Sed
module Cmp = Eden_filters.Compare
module Report = Eden_filters.Report
module Dev = Eden_devices.Devices

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let program =
  [
    "C     AREA OF A CIRCLE";
    "      REAL R, A";
    "C     READ THE RADIUS";
    "      READ *, R";
    "      A = PI * R * R";
    "      PRINT *, A";
    "      END";
  ]

let test_the_works () =
  let k = Kernel.create ~nodes:[ "vax-a"; "vax-b"; "vax-c" ] () in
  let na, nb, nc =
    match Kernel.nodes k with
    | [ a; b; c ] -> (a, b, c)
    | _ -> Alcotest.fail "expected three nodes"
  in

  (* Machine A: the Unix bootstrap file system. *)
  let fs = Fs.create () in
  let fse = Fse.create k ~node:na fs in
  Fs.mkdir_p fs "/usr/src";
  Fs.write_file fs "/usr/src/circle.f" (Eden_util.Text.join_lines program);

  (* Machine B: a sed script stored in an Eden-native file. *)
  let sed_script = File.create k ~node:nb ~initial:[ "s/PI/3.14159/"; "/^$/d" ] () in

  (* Machine C: devices. *)
  let printer = Dev.printer k ~node:nc () in

  (* The user's namespace, on machine A. *)
  let root = Dir.create k ~node:na () in

  let window_lines = ref [] in
  let paper = ref [] in
  let diff_out = ref [] in

  Kernel.run_driver k (fun ctx ->
      (* Name everything. *)
      Ns.bind ctx ~root "/bin/fs" fse;
      Ns.bind ctx ~root "/etc/fix-pi.sed" sed_script;
      Ns.bind ctx ~root "/dev/printer" printer.Dev.puid;

      (* A directory crash must not lose the bindings (checkpoints). *)
      Kernel.crash k root;

      let fse = Option.get (Ns.resolve ctx ~root "/bin/fs") in
      let sed_file = Option.get (Ns.resolve ctx ~root "/etc/fix-pi.sed") in
      let printer_uid = Option.get (Ns.resolve ctx ~root "/dev/printer") in

      (* Build the read-only pipeline on machine B:
         unix file -> strip-comments (reporting) -> sed (two-input, with
         the command stream read from the Eden file) -> paginate. *)
      let src = Fse.new_stream ctx ~fs:fse "/usr/src/circle.f" in
      let strip =
        Report.filter_ro k ~node:nb ~name:"strip" ~upstream:src
          (Report.with_progress ~every:2 ~label:"strip" (Cat.strip_comments ()))
      in
      let commands_chan = File.open_read ctx sed_file in
      let edit =
        Sed.two_input_stage k ~node:nb ~commands:(sed_file, commands_chan)
          ~text:(strip, T.Channel.output) ()
      in
      let pages =
        T.Stage.filter_ro k ~node:nb ~name:"paginate" ~upstream:edit
          (Cat.paginate ~lines_per_page:3 ~title:"circle.f" ())
      in

      (* Watch the strip filter's reports while printing. *)
      let window =
        Dev.report_window_ro k ~node:nc ~watch:[ ("strip", strip, T.Channel.report) ] ()
      in
      Kernel.poke k window.Dev.uid;

      (* "A file could be printed simply by requesting the printer
         server to read from the paginator." *)
      Dev.print ctx ~printer:printer_uid pages;
      Eden_sched.Ivar.read window.Dev.done_;
      window_lines := window.Dev.lines ();
      paper := printer.Dev.paper ();

      (* Golden copy in an Eden file; diff must be empty. *)
      let golden =
        File.create k ~node:nb
          ~initial:
            [
              "==== circle.f page 1 ====";
              "      REAL R, A";
              "      READ *, R";
              "      A = 3.14159 * R * R";
              "==== circle.f page 2 ====";
              "      PRINT *, A";
              "      END";
            ]
          ()
      in
      let result = File.create k ~node:nb () in
      File.write_all ctx result !paper;
      let gc = File.open_read ctx golden in
      let rc = File.open_read ctx result in
      let d = Cmp.diff_stage k ~node:nb ~left:(golden, gc) ~right:(result, rc) () in
      let pull = T.Pull.connect ctx d in
      T.Pull.iter (fun v -> diff_out := Value.to_str v :: !diff_out) pull);

  check lines_t "printed output matches the golden file (diff empty)" [] !diff_out;
  Alcotest.(check bool) "paper non-empty" true (!paper <> []);
  Alcotest.(check bool) "window saw strip's reports" true
    (List.exists (fun l -> Eden_util.Text.is_prefix ~prefix:"strip |" l) !window_lines)

let test_meter_sanity_across_the_works () =
  (* The same scenario must run deterministically: same seed, same
     counts. *)
  let run () =
    let k = Kernel.create ~seed:5L () in
    let fs = Fs.create () in
    let fse = Fse.create k fs in
    Fs.write_file fs "/f" "a\nb\nc\n";
    Kernel.run_driver k (fun ctx ->
        Fse.copy_through ctx ~fs:fse ~src:"/f" ~dst:"/g" [ Cat.upcase; Cat.tail 2 ]);
    ((Kernel.Meter.snapshot k).Kernel.Meter.invocations, Fs.read_file fs "/g")
  in
  let i1, o1 = run () in
  let i2, o2 = run () in
  check Alcotest.int "same invocation count" i1 i2;
  check Alcotest.string "same output" o1 o2;
  check Alcotest.string "content correct" "B\nC\n" o1

let suite =
  [
    ("the works", `Quick, test_the_works);
    ("determinism across the works", `Quick, test_meter_sanity_across_the_works);
  ]
