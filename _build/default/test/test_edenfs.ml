(* Eden-native files: active file Ejects with dual protocols. *)

open Eden_kernel
module T = Eden_transput
module File = Eden_edenfs.Eden_file
module Dir = Eden_dirsvc.Directory

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let test_read_initial_contents () =
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "alpha"; "beta" ] () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx -> got := File.read_all ctx f);
  check lines_t "initial contents" [ "alpha"; "beta" ] !got

let test_write_then_read () =
  let k = Kernel.create () in
  let f = File.create k () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      File.write_all ctx f [ "one"; "two" ];
      got := File.read_all ctx f);
  check lines_t "written contents" [ "one"; "two" ] !got

let test_append_mode () =
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "base" ] () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      File.write_all ctx ~append:true f [ "more" ];
      got := File.read_all ctx f);
  check lines_t "appended" [ "base"; "more" ] !got

let test_concurrent_readers_snapshot () =
  (* Two readers each get a full, independent copy (own capability
     channel) — no stealing, and a commit between opens does not tear
     the earlier reader's view. *)
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "v1-a"; "v1-b" ] () in
  let first = ref [] and second = ref [] in
  Kernel.run_driver k (fun ctx ->
      let chan1 = File.open_read ctx f in
      File.write_all ctx f [ "v2-only" ];
      let pull1 = T.Pull.connect ctx ~channel:chan1 f in
      T.Pull.iter (fun v -> first := Value.to_str v :: !first) pull1;
      second := File.read_all ctx f);
  check lines_t "reader 1 sees the snapshot it opened" [ "v1-a"; "v1-b" ] (List.rev !first);
  check lines_t "reader 2 sees the commit" [ "v2-only" ] !second

let test_map_protocol () =
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "zero"; "one"; "two" ] () in
  Kernel.run_driver k (fun ctx ->
      check Alcotest.int "size" 3 (File.size ctx f);
      check Alcotest.string "read_at" "one" (File.read_at ctx f 1);
      File.write_at ctx f 1 "ONE";
      check Alcotest.string "after write_at" "ONE" (File.read_at ctx f 1);
      File.truncate_to ctx f 2;
      check Alcotest.int "after truncate" 2 (File.size ctx f))

let test_map_bounds () =
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "only" ] () in
  Kernel.run_driver k (fun ctx ->
      (match File.read_at ctx f 5 with
      | exception Kernel.Eden_error msg ->
          Alcotest.(check bool) "names bounds" true
            (Eden_util.Text.contains_sub ~sub:"out of bounds" msg)
      | _ -> Alcotest.fail "expected bounds error");
      match File.write_at ctx f (-1) "x" with
      | exception Kernel.Eden_error _ -> ()
      | _ -> Alcotest.fail "expected bounds error")

let test_both_protocols_interoperate () =
  (* §6: "it may support both protocols" — stream a file written via
     the Map protocol. *)
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "a"; "b"; "c" ] () in
  Kernel.run_driver k (fun ctx ->
      File.write_at ctx f 0 "A";
      let lines = File.read_all ctx f in
      check lines_t "map write visible to stream read" [ "A"; "b"; "c" ] lines)

let test_commit_survives_crash () =
  let k = Kernel.create () in
  let f = File.create k () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      File.write_all ctx f [ "durable" ];
      Kernel.crash k f;
      got := File.read_all ctx f);
  check lines_t "committed contents recovered" [ "durable" ] !got

let test_uncommitted_write_lost_on_crash () =
  (* A writer that never sends end of stream has committed nothing; a
     crash reverts to the last checkpoint. *)
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "old" ] () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      let chan = File.open_write ctx f in
      let push = T.Push.connect ctx ~channel:chan f in
      T.Push.write push (Value.Str "half-written");
      (* no close: no commit *)
      Kernel.crash k f;
      got := File.read_all ctx f);
  check lines_t "uncommitted write lost" [ "old" ] !got

let test_initial_contents_durable () =
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "born-with" ] () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      (* Activate (first read), then crash before any write. *)
      ignore (File.read_all ctx f);
      Kernel.crash k f;
      got := File.read_all ctx f);
  check lines_t "creation contents checkpointed" [ "born-with" ] !got

let test_file_feeds_pipeline () =
  (* An Eden file is a stream source like any other: pipe it through a
     filter to a terminal. *)
  let k = Kernel.create () in
  let f = File.create k ~initial:[ "C comment"; "      CODE" ] () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let chan = File.open_read ctx f in
      let filter =
        T.Stage.filter_ro k ~upstream:f ~upstream_channel:chan
          (Eden_filters.Catalog.strip_comments ())
      in
      let pull = T.Pull.connect ctx filter in
      T.Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  check lines_t "filtered file" [ "      CODE" ] !out

let test_file_in_directory () =
  (* Files are Ejects, so they are catalogued like anything else (§2). *)
  let k = Kernel.create () in
  let dir = Dir.create k () in
  let f = File.create k ~initial:[ "hello" ] () in
  let via_dir = ref [] in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir "readme" f;
      match Dir.lookup ctx ~dir "readme" with
      | Some uid -> via_dir := File.read_all ctx uid
      | None -> ());
  check lines_t "read through directory" [ "hello" ] !via_dir

let test_last_commit_wins () =
  let k = Kernel.create () in
  let f = File.create k () in
  let got = ref [] in
  Kernel.run_driver k (fun ctx ->
      (* Two writers open; the one that closes last defines the
         contents. *)
      let c1 = File.open_write ctx f in
      let c2 = File.open_write ctx f in
      let p1 = T.Push.connect ctx ~channel:c1 f in
      let p2 = T.Push.connect ctx ~channel:c2 f in
      T.Push.write p1 (Value.Str "first");
      T.Push.write p2 (Value.Str "second");
      T.Push.close p1;
      T.Push.close p2;
      got := File.read_all ctx f);
  check lines_t "second commit wins" [ "second" ] !got

let suite =
  [
    ("read initial contents", `Quick, test_read_initial_contents);
    ("write then read", `Quick, test_write_then_read);
    ("append mode", `Quick, test_append_mode);
    ("concurrent readers snapshot", `Quick, test_concurrent_readers_snapshot);
    ("map protocol", `Quick, test_map_protocol);
    ("map bounds", `Quick, test_map_bounds);
    ("both protocols interoperate", `Quick, test_both_protocols_interoperate);
    ("commit survives crash", `Quick, test_commit_survives_crash);
    ("uncommitted write lost on crash", `Quick, test_uncommitted_write_lost_on_crash);
    ("initial contents durable", `Quick, test_initial_contents_durable);
    ("file feeds pipeline", `Quick, test_file_feeds_pipeline);
    ("file in directory", `Quick, test_file_in_directory);
    ("last commit wins", `Quick, test_last_commit_wins);
  ]
