(* Multi-stream plumbing: tee, merge, split, zip. *)

open Eden_kernel
open Eden_transput
module Dev = Eden_devices.Devices

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let drain ctx ?channel uid =
  let pull = Pull.connect ctx ?channel uid in
  let acc = ref [] in
  Pull.iter (fun v -> acc := Value.to_str v :: !acc) pull;
  List.rev !acc

let test_tee_duplicates () =
  let k = Kernel.create () in
  let src = Dev.text_source k [ "a"; "b"; "c" ] in
  let ch1 = Channel.Num 10 and ch2 = Channel.Num 20 in
  let tee = Flow.tee k ~capacity:4 ~upstream:src ~channels:[ ch1; ch2 ] () in
  let got1 = ref [] and got2 = ref [] in
  let wg = Eden_sched.Waitgroup.create () in
  Eden_sched.Waitgroup.add wg 2;
  let mk chan out =
    Stage.sink_ro k ~upstream:tee ~upstream_channel:chan
      ~on_done:(fun () -> Eden_sched.Waitgroup.finish wg)
      (fun v -> out := Value.to_str v :: !out)
  in
  let s1 = mk ch1 got1 and s2 = mk ch2 got2 in
  Kernel.poke k s1;
  Kernel.poke k s2;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  check lines_t "copy 1 complete" [ "a"; "b"; "c" ] (List.rev !got1);
  check lines_t "copy 2 complete" [ "a"; "b"; "c" ] (List.rev !got2)

let test_tee_empty_channels_rejected () =
  let k = Kernel.create () in
  let src = Dev.text_source k [] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Flow.tee k ~upstream:src ~channels:[] ());
       false
     with Invalid_argument _ -> true)

let test_tee_slow_consumer_backpressures () =
  (* With capacity 0 the tee can run no further ahead than its slowest
     consumer: after the fast reader drains what it can, the tee parks
     on the unread channel. *)
  let k = Kernel.create () in
  let src = Dev.text_source k [ "a"; "b"; "c"; "d" ] in
  let ch1 = Channel.Num 1 and ch2 = Channel.Num 2 in
  let tee = Flow.tee k ~capacity:0 ~upstream:src ~channels:[ ch1; ch2 ] () in
  let got = ref [] in
  (* Only channel 1 gets a reader. *)
  let s1 = Stage.sink_ro k ~upstream:tee ~upstream_channel:ch1 (fun v -> got := v :: !got) in
  Kernel.poke k s1;
  Kernel.run k;
  (* The first item went to ch1's reader; the copy for ch2 blocks the
     tee, so the reader saw at most 2 items before quiescence. *)
  Alcotest.(check bool)
    (Printf.sprintf "reader starved at %d items" (List.length !got))
    true
    (List.length !got <= 2);
  Alcotest.(check bool) "tee parked, not crashed" true
    (Eden_sched.Sched.failures (Kernel.sched k) = [])

let test_merge_arrival_sees_everything () =
  let k = Kernel.create () in
  let s1 = Dev.text_source k [ "a1"; "a2" ] in
  let s2 = Dev.text_source k [ "b1"; "b2"; "b3" ] in
  let m =
    Flow.merge k ~upstreams:[ (s1, Channel.output); (s2, Channel.output) ] ()
  in
  let out = ref [] in
  Kernel.run_driver k (fun ctx -> out := drain ctx m);
  check Alcotest.int "all five arrive" 5 (List.length !out);
  let of_src p = List.filter (Eden_util.Text.is_prefix ~prefix:p) !out in
  check lines_t "source order preserved within s1" [ "a1"; "a2" ] (of_src "a");
  check lines_t "source order preserved within s2" [ "b1"; "b2"; "b3" ] (of_src "b")

let test_merge_round_robin_alternates () =
  let k = Kernel.create () in
  let s1 = Dev.text_source k ~capacity:4 [ "a1"; "a2"; "a3" ] in
  let s2 = Dev.text_source k ~capacity:4 [ "b1" ] in
  let m =
    Flow.merge k ~policy:Flow.Round_robin
      ~upstreams:[ (s1, Channel.output); (s2, Channel.output) ]
      ()
  in
  let out = ref [] in
  Kernel.run_driver k (fun ctx -> out := drain ctx m);
  (* Round robin: a1 b1, then s2 ends and drops out, then a2 a3. *)
  check lines_t "alternation then drain" [ "a1"; "b1"; "a2"; "a3" ] !out

let test_split_routes_by_predicate () =
  let k = Kernel.create () in
  let src = Dev.text_source k [ "apple"; "10"; "pear"; "42" ] in
  let digits = Channel.Num 1 and words = Channel.Num 2 in
  let is_digits v = String.for_all (fun c -> c >= '0' && c <= '9') (Value.to_str v) in
  let sp =
    Flow.split k ~capacity:8 ~upstream:src ~pred:is_digits ~accept:digits ~reject:words ()
  in
  let got_digits = ref [] and got_words = ref [] in
  Kernel.run_driver k (fun ctx ->
      got_digits := drain ctx ~channel:digits sp;
      got_words := drain ctx ~channel:words sp);
  check lines_t "digits" [ "10"; "42" ] !got_digits;
  check lines_t "words" [ "apple"; "pear" ] !got_words

let test_split_same_channel_rejected () =
  let k = Kernel.create () in
  let src = Dev.text_source k [] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore
         (Flow.split k ~upstream:src
            ~pred:(fun _ -> true)
            ~accept:(Channel.Num 1) ~reject:(Channel.Num 1) ());
       false
     with Invalid_argument _ -> true)

let test_zip_pairs_until_shorter () =
  let k = Kernel.create () in
  let s1 = Dev.text_source k [ "a"; "b"; "c" ] in
  let s2 = Dev.text_source k [ "1"; "2" ] in
  let z = Flow.zip k ~left:(s1, Channel.output) ~right:(s2, Channel.output) () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx z in
      Pull.iter
        (fun v ->
          let l, r = Value.to_pair v in
          out := (Value.to_str l ^ Value.to_str r) :: !out)
        pull);
  check lines_t "pairs, ending with shorter" [ "a1"; "b2" ] (List.rev !out)

let test_flow_composes_with_filters () =
  (* split -> per-branch filter -> merge: a little dataflow graph. *)
  let k = Kernel.create () in
  let src = Dev.text_source k ~capacity:8 [ "keep a"; "drop b"; "keep c"; "drop d" ] in
  let keeps = Channel.Num 1 and drops = Channel.Num 2 in
  let sp =
    Flow.split k ~capacity:8 ~upstream:src
      ~pred:(fun v -> Eden_util.Text.is_prefix ~prefix:"keep" (Value.to_str v))
      ~accept:keeps ~reject:drops ()
  in
  let shout =
    Stage.filter_ro k ~capacity:8 ~upstream:sp ~upstream_channel:keeps
      Eden_filters.Catalog.upcase
  in
  let tag =
    Stage.filter_ro k ~capacity:8 ~upstream:sp ~upstream_channel:drops
      (Eden_filters.Line.map (fun l -> "(" ^ l ^ ")"))
  in
  let m =
    Flow.merge k ~capacity:8 ~upstreams:[ (shout, Channel.output); (tag, Channel.output) ] ()
  in
  let out = ref [] in
  Kernel.run_driver k (fun ctx -> out := drain ctx m);
  let sorted = List.sort String.compare !out in
  check lines_t "all four, transformed per branch"
    [ "(drop b)"; "(drop d)"; "KEEP A"; "KEEP C" ]
    sorted

let suite =
  [
    ("tee duplicates", `Quick, test_tee_duplicates);
    ("tee rejects empty channels", `Quick, test_tee_empty_channels_rejected);
    ("tee backpressures on slow consumer", `Quick, test_tee_slow_consumer_backpressures);
    ("merge arrival", `Quick, test_merge_arrival_sees_everything);
    ("merge round robin", `Quick, test_merge_round_robin_alternates);
    ("split routes", `Quick, test_split_routes_by_predicate);
    ("split rejects same channel", `Quick, test_split_same_channel_rejected);
    ("zip pairs", `Quick, test_zip_pairs_until_shorter);
    ("split/filter/merge graph", `Quick, test_flow_composes_with_filters);
  ]
