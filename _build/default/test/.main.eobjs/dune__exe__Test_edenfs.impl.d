test/test_edenfs.ml: Alcotest Eden_dirsvc Eden_edenfs Eden_filters Eden_kernel Eden_transput Eden_util Kernel List Value
