test/test_stdio.ml: Alcotest Eden_devices Eden_kernel Eden_sched Eden_transput Kernel Stage Stdio String Transform
