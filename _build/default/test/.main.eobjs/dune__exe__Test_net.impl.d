test/test_net.ml: Alcotest Eden_net Eden_sched Printf QCheck2 QCheck_alcotest
