test/test_sed.ml: Alcotest Eden_devices Eden_edenfs Eden_filters Eden_kernel Eden_sched Eden_transput Eden_util Kernel List QCheck2 QCheck_alcotest Value
