test/test_redirect.ml: Alcotest Channel Eden_devices Eden_filters Eden_kernel Eden_sched Eden_transput Eden_util Kernel List Printf Pull Redirect Stage Value
