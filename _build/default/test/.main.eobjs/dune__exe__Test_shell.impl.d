test/test_shell.ml: Alcotest Eden_fs Eden_shell Eden_transput Eden_util List Printf
