test/test_failures.ml: Alcotest Channel Eden_devices Eden_kernel Eden_net Eden_sched Eden_transput Eden_util Fun Kernel List Port Printf Proto Pull Stage Transform Value
