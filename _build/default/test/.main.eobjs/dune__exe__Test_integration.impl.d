test/test_integration.ml: Alcotest Eden_devices Eden_dirsvc Eden_edenfs Eden_filters Eden_fs Eden_kernel Eden_sched Eden_transput Eden_util Kernel List Option Value
