test/test_trace.ml: Alcotest Eden_kernel Eden_transput Format Fun Kernel List Pipeline String Transform Value
