test/test_sched.ml: Alcotest Buffer Chan Eden_sched Eden_util Int64 Ivar List Mailbox Printf QCheck2 QCheck_alcotest Sched Semaphore Waitgroup
