test/test_kernel.ml: Alcotest Eden_kernel Eden_net Eden_sched Eden_util Kernel List String Uid Value
