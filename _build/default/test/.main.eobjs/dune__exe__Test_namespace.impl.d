test/test_namespace.ml: Alcotest Eden_dirsvc Eden_kernel Eden_util Kernel List Uid
