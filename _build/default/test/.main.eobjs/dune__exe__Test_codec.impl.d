test/test_codec.ml: Alcotest Codec Eden_devices Eden_kernel Eden_sched Eden_transput Eden_util Kernel List Printf Pull Push QCheck2 QCheck_alcotest Stage Uid Value
