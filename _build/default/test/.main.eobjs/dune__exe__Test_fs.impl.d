test/test_fs.ml: Alcotest Eden_fs Eden_kernel Eden_transput Eden_util Kernel List QCheck2 QCheck_alcotest String Value
