test/test_devices.ml: Alcotest Eden_devices Eden_filters Eden_fs Eden_kernel Eden_net Eden_sched Eden_transput Eden_util Kernel List String Value
