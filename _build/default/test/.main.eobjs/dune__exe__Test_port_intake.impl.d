test/test_port_intake.ml: Alcotest Channel Eden_kernel Eden_sched Eden_transput Intake Kernel List Port Proto Value
