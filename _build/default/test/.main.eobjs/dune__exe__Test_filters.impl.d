test/test_filters.ml: Alcotest Array Eden_devices Eden_filters Eden_kernel Eden_transput Eden_util Kernel List QCheck2 QCheck_alcotest Value
