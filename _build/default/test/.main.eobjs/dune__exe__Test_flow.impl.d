test/test_flow.ml: Alcotest Channel Eden_devices Eden_filters Eden_kernel Eden_sched Eden_transput Eden_util Flow Kernel List Printf Pull Stage String Value
