test/main.mli:
