test/test_util.ml: Alcotest Array Eden_util Float Fqueue Fun Heap Int Int64 List Prng QCheck2 QCheck_alcotest Queue Ring Stats String Table Text
