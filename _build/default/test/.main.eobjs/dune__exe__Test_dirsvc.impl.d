test/test_dirsvc.ml: Alcotest Eden_dirsvc Eden_kernel Eden_util Fun Kernel List Uid
