(* Direct unit tests of Port and Intake on bare fibers — the handler
   protocol exercised without kernel or network in the way. *)

open Eden_kernel
open Eden_transput
module Sched = Eden_sched.Sched

let check = Alcotest.check

(* Run a Transfer against a port's handler from inside a fiber. *)
let transfer handlers chan credit =
  let h = List.assoc Proto.transfer_op handlers in
  Proto.parse_transfer_reply (h (Proto.transfer_request chan ~credit))

let deposit handlers chan ~eos items =
  let h = List.assoc Proto.deposit_op handlers in
  ignore (h (Proto.deposit_request chan ~eos items))

let in_fiber f =
  let s = Sched.create () in
  ignore (Sched.spawn s ~name:"test" f);
  Sched.run s;
  Sched.check_failures s;
  s

let test_transfer_served_from_buffer () =
  ignore
    (in_fiber (fun () ->
         let port = Port.create () in
         let w = Port.add_channel port ~capacity:8 Channel.output in
         List.iter (fun i -> Port.write w (Value.Int i)) [ 1; 2; 3 ];
         let r = transfer (Port.handlers port) Channel.output 2 in
         Alcotest.(check bool) "not eos" false r.Proto.eos;
         check Alcotest.int "two items (credit-limited)" 2 (List.length r.Proto.items);
         check Alcotest.int "buffer keeps the rest" 1 (Port.buffered w)))

let test_transfer_credit_larger_than_buffer () =
  ignore
    (in_fiber (fun () ->
         let port = Port.create () in
         let w = Port.add_channel port ~capacity:8 Channel.output in
         Port.write w (Value.Int 1);
         Port.close w;
         let r = transfer (Port.handlers port) Channel.output 10 in
         Alcotest.(check bool) "eos piggybacked" true r.Proto.eos;
         check Alcotest.int "one item" 1 (List.length r.Proto.items)))

let test_transfer_on_closed_empty () =
  ignore
    (in_fiber (fun () ->
         let port = Port.create () in
         let w = Port.add_channel port ~capacity:1 Channel.output in
         Port.close w;
         let r = transfer (Port.handlers port) Channel.output 1 in
         Alcotest.(check bool) "eos, empty" true (r.Proto.eos && r.Proto.items = [])))

let test_write_after_close_fails () =
  ignore
    (in_fiber (fun () ->
         let port = Port.create () in
         let w = Port.add_channel port ~capacity:1 Channel.output in
         Port.close w;
         Alcotest.(check bool) "raises" true
           (try
              Port.write w (Value.Int 1);
              false
            with Failure _ -> true)))

let test_close_idempotent () =
  ignore
    (in_fiber (fun () ->
         let port = Port.create () in
         let w = Port.add_channel port ~capacity:1 Channel.output in
         Port.close w;
         Port.close w;
         Alcotest.(check bool) "closed" true (Port.is_closed w)))

let test_duplicate_channel_rejected () =
  let port = Port.create () in
  ignore (Port.add_channel port Channel.output);
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Port.add_channel port Channel.output);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative capacity rejected" true
    (try
       ignore (Port.add_channel port ~capacity:(-1) (Channel.Num 5));
       false
     with Invalid_argument _ -> true)

let test_writer_lookup () =
  let port = Port.create () in
  let w = Port.add_channel port (Channel.Num 3) in
  Alcotest.(check bool) "found" true (Port.writer port (Channel.Num 3) == w);
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Port.writer port (Channel.Num 9));
       false
     with Not_found -> true)

let test_transfer_blocks_until_write () =
  let s = Sched.create () in
  let port = Port.create () in
  let w = Port.add_channel port ~capacity:0 Channel.output in
  let got = ref None in
  ignore
    (Sched.spawn s ~name:"reader" (fun () ->
         got := Some (transfer (Port.handlers port) Channel.output 1)));
  ignore
    (Sched.spawn s ~name:"writer" (fun () ->
         Sched.sleep 5.0;
         Port.write w (Value.Str "late")));
  Sched.run s;
  Sched.check_failures s;
  match !got with
  | Some r -> check Alcotest.int "one item after wait" 1 (List.length r.Proto.items)
  | None -> Alcotest.fail "transfer never completed"

let test_intake_deposit_then_read () =
  ignore
    (in_fiber (fun () ->
         let intake = Intake.create () in
         let r = Intake.add_channel intake ~capacity:4 Channel.output in
         deposit (Intake.handlers intake) Channel.output ~eos:false
           [ Value.Int 1; Value.Int 2 ];
         check Alcotest.int "buffered" 2 (Intake.buffered r);
         Alcotest.(check bool) "read 1" true (Intake.read r = Some (Value.Int 1));
         Alcotest.(check bool) "read 2" true (Intake.read r = Some (Value.Int 2));
         deposit (Intake.handlers intake) Channel.output ~eos:true [];
         Alcotest.(check bool) "eos -> None" true (Intake.read r = None);
         Alcotest.(check bool) "eos seen" true (Intake.eos_seen r)))

let test_intake_unknown_channel () =
  ignore
    (in_fiber (fun () ->
         let intake = Intake.create () in
         ignore (Intake.add_channel intake Channel.output);
         Alcotest.(check bool) "refused" true
           (try
              deposit (Intake.handlers intake) (Channel.Num 9) ~eos:false [ Value.Int 1 ];
              false
            with Kernel.Eden_error _ -> true)))

let test_intake_capacity_bounds () =
  let intake = Intake.create () in
  Alcotest.(check bool) "zero capacity rejected" true
    (try
       ignore (Intake.add_channel intake ~capacity:0 Channel.output);
       false
     with Invalid_argument _ -> true)

let test_intake_read_blocks_until_deposit () =
  let s = Sched.create () in
  let intake = Intake.create () in
  let r = Intake.add_channel intake ~capacity:1 Channel.output in
  let got = ref None in
  ignore (Sched.spawn s ~name:"consumer" (fun () -> got := Intake.read r));
  ignore
    (Sched.spawn s ~name:"producer" (fun () ->
         Sched.sleep 3.0;
         deposit (Intake.handlers intake) Channel.output ~eos:false [ Value.Str "x" ]));
  Sched.run s;
  Sched.check_failures s;
  Alcotest.(check bool) "woken with the deposit" true (!got = Some (Value.Str "x"))

let test_port_two_channels_independent_eos () =
  ignore
    (in_fiber (fun () ->
         let port = Port.create () in
         let a = Port.add_channel port ~capacity:2 (Channel.Num 1) in
         let b = Port.add_channel port ~capacity:2 (Channel.Num 2) in
         Port.write a (Value.Int 1);
         Port.close a;
         Port.write b (Value.Int 2);
         let ra = transfer (Port.handlers port) (Channel.Num 1) 5 in
         let rb = transfer (Port.handlers port) (Channel.Num 2) 5 in
         Alcotest.(check bool) "a closed" true ra.Proto.eos;
         Alcotest.(check bool) "b still open" false rb.Proto.eos))

let suite =
  [
    ("transfer served from buffer", `Quick, test_transfer_served_from_buffer);
    ("credit larger than buffer", `Quick, test_transfer_credit_larger_than_buffer);
    ("transfer on closed empty", `Quick, test_transfer_on_closed_empty);
    ("write after close fails", `Quick, test_write_after_close_fails);
    ("close idempotent", `Quick, test_close_idempotent);
    ("duplicate channel rejected", `Quick, test_duplicate_channel_rejected);
    ("writer lookup", `Quick, test_writer_lookup);
    ("transfer blocks until write", `Quick, test_transfer_blocks_until_write);
    ("intake deposit then read", `Quick, test_intake_deposit_then_read);
    ("intake unknown channel", `Quick, test_intake_unknown_channel);
    ("intake capacity bounds", `Quick, test_intake_capacity_bounds);
    ("intake read blocks until deposit", `Quick, test_intake_read_blocks_until_deposit);
    ("two channels independent eos", `Quick, test_port_two_channels_independent_eos);
  ]
