(* Dynamic stream redirection and the rendezvous primitive. *)

open Eden_kernel
open Eden_transput
module Dev = Eden_devices.Devices
module Rendezvous = Eden_sched.Rendezvous

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let test_redirector_transparent () =
  let k = Kernel.create () in
  let a = Dev.text_source k [ "a1"; "a2"; "a3" ] in
  let r = Redirect.create k ~initial:(a, Channel.output) () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx r in
      Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  check lines_t "proxied verbatim" [ "a1"; "a2"; "a3" ] (List.rev !out)

let test_redirect_mid_stream () =
  let k = Kernel.create () in
  let a = Dev.text_source k (List.init 100 (fun i -> Printf.sprintf "a%d" i)) in
  let b = Dev.text_source k [ "b0"; "b1" ] in
  let r = Redirect.create k ~initial:(a, Channel.output) () in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx r in
      (* Take three items from a, switch to b, drain. *)
      for _ = 1 to 3 do
        match Pull.read pull with
        | Some v -> out := Value.to_str v :: !out
        | None -> ()
      done;
      Redirect.set_source ctx ~redirector:r b;
      Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  let got = List.rev !out in
  (* The first three came from a; after the switch everything comes
     from b (one a-item already in flight inside the proxy may slip
     through — at-most one). *)
  check lines_t "prefix from a" [ "a0"; "a1"; "a2" ] (List.filteri (fun i _ -> i < 3) got);
  let after = List.filteri (fun i _ -> i >= 3) got in
  let b_items = List.filter (Eden_util.Text.is_prefix ~prefix:"b") after in
  check lines_t "b fully delivered after switch" [ "b0"; "b1" ] b_items;
  Alcotest.(check bool) "at most one straggler from a" true
    (List.length after - List.length b_items <= 1)

let test_redirect_cost_is_one_hop () =
  (* The indirection costs exactly one extra invocation per datum. *)
  let n_items = 16 in
  let run ~redirected =
    let k = Kernel.create () in
    let src = Dev.text_source k (List.init n_items string_of_int) in
    let upstream =
      if redirected then Redirect.create k ~initial:(src, Channel.output) () else src
    in
    let before = Kernel.Meter.snapshot k in
    let sink = Stage.sink_ro k ~upstream ignore in
    Kernel.poke k sink;
    Kernel.run k;
    (Kernel.Meter.diff (Kernel.Meter.snapshot k) before).Kernel.Meter.invocations
  in
  let direct = run ~redirected:false and via = run ~redirected:true in
  Alcotest.(check bool)
    (Printf.sprintf "direct %d, via redirector %d" direct via)
    true
    (via >= (2 * direct) - 2 && via <= (2 * direct) + 2)

let test_redirector_in_pipeline () =
  (* Redirection composes with ordinary filters: the filter never
     learns its input moved. *)
  let k = Kernel.create () in
  (* The old source must not hit end of stream before the switch (the
     documented constraint), so give it plenty. *)
  let a = Dev.text_source k (List.init 50 (fun i -> Printf.sprintf "one%d" i)) in
  let b = Dev.text_source k [ "two"; "three" ] in
  let r = Redirect.create k ~initial:(a, Channel.output) () in
  let f = Stage.filter_ro k ~upstream:r Eden_filters.Catalog.upcase in
  let out = ref [] in
  Kernel.run_driver k (fun ctx ->
      let pull = Pull.connect ctx f in
      (match Pull.read pull with Some v -> out := Value.to_str v :: !out | None -> ());
      Redirect.set_source ctx ~redirector:r b;
      Pull.iter (fun v -> out := Value.to_str v :: !out) pull);
  let got = List.rev !out in
  check Alcotest.string "first item from a, upcased" "ONE0" (List.hd got);
  let from_b = List.filter (Eden_util.Text.is_prefix ~prefix:"T") got in
  check lines_t "b's items delivered through the filter" [ "TWO"; "THREE" ] from_b

(* --- rendezvous ------------------------------------------------------ *)

let test_rendezvous_basic () =
  let s = Eden_sched.Sched.create () in
  let ch = Rendezvous.create () in
  let log = ref [] in
  ignore
    (Eden_sched.Sched.spawn s ~name:"consumer" (fun () ->
         for _ = 1 to 3 do
           log := Rendezvous.recv ch :: !log
         done));
  ignore
    (Eden_sched.Sched.spawn s ~name:"producer" (fun () ->
         List.iter (Rendezvous.send ch) [ 1; 2; 3 ]));
  Eden_sched.Sched.run s;
  Eden_sched.Sched.check_failures s;
  check Alcotest.(list int) "in order" [ 1; 2; 3 ] (List.rev !log)

let test_rendezvous_blocks_sender () =
  (* No buffering: the sender cannot run ahead of the receiver. *)
  let s = Eden_sched.Sched.create () in
  let ch = Rendezvous.create () in
  let sent = ref 0 in
  ignore
    (Eden_sched.Sched.spawn s (fun () ->
         for i = 1 to 5 do
           Rendezvous.send ch i;
           sent := i
         done));
  ignore
    (Eden_sched.Sched.spawn s (fun () ->
         ignore (Rendezvous.recv ch);
         ignore (Rendezvous.recv ch)));
  Eden_sched.Sched.run s;
  (* Two receives completed; the third send is parked: sent <= 3. *)
  Alcotest.(check bool) "sender gated by receiver" true (!sent <= 3);
  check Alcotest.int "one sender parked" 1 (Rendezvous.waiting_senders ch)

let test_rendezvous_try_ops () =
  let s = Eden_sched.Sched.create () in
  let ch = Rendezvous.create () in
  Alcotest.(check bool) "try_send with nobody" false (Rendezvous.try_send ch 1);
  check Alcotest.(option int) "try_recv with nobody" None (Rendezvous.try_recv ch);
  ignore (Eden_sched.Sched.spawn s (fun () -> Rendezvous.send ch 9));
  Eden_sched.Sched.run s;
  check Alcotest.(option int) "try_recv takes parked sender" (Some 9) (Rendezvous.try_recv ch);
  Eden_sched.Sched.run s;
  Eden_sched.Sched.check_failures s

let test_rendezvous_many_senders_fifo () =
  let s = Eden_sched.Sched.create () in
  let ch = Rendezvous.create () in
  for i = 1 to 4 do
    ignore (Eden_sched.Sched.spawn s (fun () -> Rendezvous.send ch i))
  done;
  let got = ref [] in
  ignore
    (Eden_sched.Sched.spawn s (fun () ->
         for _ = 1 to 4 do
           got := Rendezvous.recv ch :: !got
         done));
  Eden_sched.Sched.run s;
  Eden_sched.Sched.check_failures s;
  check Alcotest.(list int) "fifo among senders" [ 1; 2; 3; 4 ] (List.rev !got)

let suite =
  [
    ("redirector transparent", `Quick, test_redirector_transparent);
    ("redirect mid-stream", `Quick, test_redirect_mid_stream);
    ("redirect costs one hop", `Quick, test_redirect_cost_is_one_hop);
    ("redirector in pipeline", `Quick, test_redirector_in_pipeline);
    ("rendezvous basic", `Quick, test_rendezvous_basic);
    ("rendezvous blocks sender", `Quick, test_rendezvous_blocks_sender);
    ("rendezvous try ops", `Quick, test_rendezvous_try_ops);
    ("rendezvous many senders fifo", `Quick, test_rendezvous_many_senders_fifo);
  ]
