(* The conventional-programming veneer of §4. *)

open Eden_kernel
open Eden_transput
module Dev = Eden_devices.Devices

let check = Alcotest.check
let lines_t = Alcotest.(list string)

let with_filter ?(input = [ "one"; "two"; "three" ]) body =
  let k = Kernel.create () in
  let src = Dev.text_source k input in
  let f = Stdio.filter_ro k ~upstream:src body in
  let term = Dev.terminal_ro k ~upstream:f () in
  Kernel.poke k term.Dev.uid;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  term.Dev.lines ()

let test_identity_via_stdio () =
  let out =
    with_filter (fun stdin stdout -> Stdio.iter_lines (Stdio.print_line stdout) stdin)
  in
  check lines_t "copied conventionally" [ "one"; "two"; "three" ] out

let test_printf_and_partial_lines () =
  let out =
    with_filter (fun stdin stdout ->
        Stdio.iter_lines
          (fun l ->
            (* Build one output line from several conventional writes. *)
            Stdio.output_string stdout "[";
            Stdio.output_string stdout l;
            Stdio.output_string stdout "]";
            Stdio.output_char stdout '\n';
            Stdio.printf stdout "len=%d" (String.length l))
          stdin)
  in
  check lines_t "interleaved writes form lines"
    [ "[one]"; "len=3"; "[two]"; "len=3"; "[three]"; "len=5" ]
    out

let test_unterminated_line_flushed_on_close () =
  let out =
    with_filter (fun _stdin stdout -> Stdio.output_string stdout "no newline")
  in
  check lines_t "partial line emitted at close" [ "no newline" ] out

let test_char_level_input () =
  (* Re-split the stream on 'x' instead of newlines, reading char by
     char: lines "axb" "c" become "a", "b\nc". *)
  let out =
    with_filter ~input:[ "axb"; "c" ] (fun stdin stdout ->
        let rec go () =
          match Stdio.input_char stdin with
          | Some 'x' ->
              Stdio.output_char stdout '\n';
              go ()
          | Some c ->
              Stdio.output_char stdout c;
              go ()
          | None -> ()
        in
        go ())
  in
  check lines_t "resplit on x" [ "a"; "b"; "c" ] out

let test_mixed_char_then_line () =
  let out =
    with_filter ~input:[ "abc"; "rest" ] (fun stdin stdout ->
        (match Stdio.input_char stdin with
        | Some c -> Stdio.printf stdout "first char %c" c
        | None -> ());
        (* input_line must return the remainder of the broken line. *)
        (match Stdio.input_line stdin with
        | Some rest -> Stdio.printf stdout "rest %s" rest
        | None -> ());
        match Stdio.input_line stdin with
        | Some l -> Stdio.print_line stdout l
        | None -> ())
  in
  check lines_t "char then line" [ "first char a"; "rest bc"; "rest" ] out

let test_write_after_close_fails () =
  let k = Kernel.create () in
  let failed = ref false in
  let src = Dev.text_source k [] in
  let f =
    Stdio.filter_ro k ~upstream:src (fun _stdin stdout ->
        Stdio.close_out stdout;
        try Stdio.print_line stdout "too late" with Failure _ -> failed := true)
  in
  let term = Dev.terminal_ro k ~upstream:f () in
  Kernel.poke k term.Dev.uid;
  Kernel.run k;
  Eden_sched.Sched.check_failures (Kernel.sched k);
  Alcotest.(check bool) "raised" true !failed

let test_stdio_filter_costs_like_plain_filter () =
  (* The veneer must not add invocations: it is internal to the Eject. *)
  let run mk =
    let k = Kernel.create () in
    let src = Dev.text_source k [ "a"; "b"; "c"; "d" ] in
    let f = mk k src in
    let term = Dev.terminal_ro k ~upstream:f () in
    let before = Kernel.Meter.snapshot k in
    Kernel.poke k term.Dev.uid;
    Kernel.run k;
    (Kernel.Meter.diff (Kernel.Meter.snapshot k) before).Kernel.Meter.invocations
  in
  let plain =
    run (fun k src -> Stage.filter_ro k ~upstream:src Transform.identity)
  in
  let veneer =
    run (fun k src ->
        Stdio.filter_ro k ~upstream:src (fun stdin stdout ->
            Stdio.iter_lines (Stdio.print_line stdout) stdin))
  in
  check Alcotest.int "same invocation count" plain veneer

let suite =
  [
    ("identity via stdio", `Quick, test_identity_via_stdio);
    ("printf and partial lines", `Quick, test_printf_and_partial_lines);
    ("unterminated line flushed", `Quick, test_unterminated_line_flushed_on_close);
    ("char-level input", `Quick, test_char_level_input);
    ("mixed char then line", `Quick, test_mixed_char_then_line);
    ("write after close fails", `Quick, test_write_after_close_fails);
    ("veneer adds no invocations", `Quick, test_stdio_filter_costs_like_plain_filter);
  ]
