(* Path resolution over directory-Eject networks. *)

open Eden_kernel
module Dir = Eden_dirsvc.Directory
module Ns = Eden_dirsvc.Namespace

let check = Alcotest.check

let leaf k name =
  Kernel.create_eject k ~type_name:name (fun _ctx ~passive:_ -> [])

let test_split () =
  check Alcotest.(list string) "plain" [ "a"; "b" ] (Ns.split "/a/b");
  check Alcotest.(list string) "messy" [ "a"; "b" ] (Ns.split "//a///b/");
  check Alcotest.(list string) "empty" [] (Ns.split "/");
  Alcotest.(check bool) "dots rejected" true
    (try
       ignore (Ns.split "/a/../b");
       false
     with Invalid_argument _ -> true)

let test_bind_and_resolve () =
  let k = Kernel.create () in
  let root = Dir.create k () in
  let target = leaf k "tool" in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Ns.bind ctx ~root "/usr/local/bin/tool" target;
      found := Ns.resolve ctx ~root "/usr/local/bin/tool");
  match !found with
  | Some uid -> Alcotest.(check bool) "resolved" true (Uid.equal uid target)
  | None -> Alcotest.fail "path did not resolve"

let test_resolve_root_and_missing () =
  let k = Kernel.create () in
  let root = Dir.create k () in
  let r1 = ref None and r2 = ref (Some root) in
  Kernel.run_driver k (fun ctx ->
      r1 := Ns.resolve ctx ~root "/";
      r2 := Ns.resolve ctx ~root "/no/such/path");
  (match !r1 with
  | Some uid -> Alcotest.(check bool) "root resolves to itself" true (Uid.equal uid root)
  | None -> Alcotest.fail "root did not resolve");
  Alcotest.(check bool) "missing path is None" true (!r2 = None)

let test_intermediate_directories_created () =
  let k = Kernel.create () in
  let root = Dir.create k () in
  let t1 = leaf k "a" and t2 = leaf k "b" in
  let listing = ref None in
  Kernel.run_driver k (fun ctx ->
      Ns.bind ctx ~root "/etc/one" t1;
      (* Second bind reuses the existing /etc directory. *)
      Ns.bind ctx ~root "/etc/two" t2;
      listing := Ns.list ctx ~root "/etc");
  match !listing with
  | Some lines ->
      check Alcotest.int "two entries" 2 (List.length lines);
      let names = List.map (fun l -> List.hd (Eden_util.Text.words l)) lines in
      check Alcotest.(list string) "sorted names" [ "one"; "two" ] names
  | None -> Alcotest.fail "/etc did not list"

let test_unbind () =
  let k = Kernel.create () in
  let root = Dir.create k () in
  let t = leaf k "t" in
  let after = ref (Some t) in
  Kernel.run_driver k (fun ctx ->
      Ns.bind ctx ~root "/tmp/x" t;
      Ns.unbind ctx ~root "/tmp/x";
      after := Ns.resolve ctx ~root "/tmp/x");
  Alcotest.(check bool) "gone" true (!after = None)

let test_bind_duplicate_refused () =
  let k = Kernel.create () in
  let root = Dir.create k () in
  let refused = ref false in
  Kernel.run_driver k (fun ctx ->
      Ns.bind ctx ~root "/x" (leaf k "a");
      try Ns.bind ctx ~root "/x" (leaf k "b") with Kernel.Eden_error _ -> refused := true);
  Alcotest.(check bool) "refused" true !refused

let test_namespace_over_concatenator () =
  (* A concatenator placed inside the tree participates in resolution:
     behavioural compatibility again. *)
  let k = Kernel.create () in
  let root = Dir.create k () in
  let d1 = Dir.create k () and d2 = Dir.create k () in
  let cat = Dir.concatenator k [ d1; d2 ] in
  let target = leaf k "deep" in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Dir.add_entry ctx ~dir:root "path" cat;
      Dir.add_entry ctx ~dir:d2 "tool" target;
      found := Ns.resolve ctx ~root "/path/tool");
  match !found with
  | Some uid -> Alcotest.(check bool) "resolved through concatenator" true (Uid.equal uid target)
  | None -> Alcotest.fail "concatenator did not resolve"

let test_namespace_survives_crashes () =
  (* Every directory checkpoints, so a whole resolved path survives
     crashing every node along it. *)
  let k = Kernel.create () in
  let root = Dir.create k () in
  let target = leaf k "precious" in
  let found = ref None in
  Kernel.run_driver k (fun ctx ->
      Ns.bind ctx ~root "/a/b/precious" target;
      (* Crash the root and whatever /a resolves to. *)
      (match Ns.resolve ctx ~root "/a" with
      | Some a -> Kernel.crash k a
      | None -> ());
      Kernel.crash k root;
      found := Ns.resolve ctx ~root "/a/b/precious");
  match !found with
  | Some uid -> Alcotest.(check bool) "path survives crashes" true (Uid.equal uid target)
  | None -> Alcotest.fail "path lost after crashes"

let suite =
  [
    ("split", `Quick, test_split);
    ("bind and resolve", `Quick, test_bind_and_resolve);
    ("root and missing", `Quick, test_resolve_root_and_missing);
    ("intermediate directories created", `Quick, test_intermediate_directories_created);
    ("unbind", `Quick, test_unbind);
    ("bind duplicate refused", `Quick, test_bind_duplicate_refused);
    ("resolution through concatenator", `Quick, test_namespace_over_concatenator);
    ("namespace survives crashes", `Quick, test_namespace_survives_crashes);
  ]
