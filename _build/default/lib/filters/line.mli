(** Lifting line functions into stream transforms.

    Stream items throughout the filter library are [Value.Str] lines
    (without the newline); these helpers do the boxing so the catalog
    can be written against plain strings.  A non-string item reaching a
    line filter raises [Value.Protocol_error], surfacing as an error
    reply — streams are homogeneous (§6). *)

module Value = Eden_kernel.Value

val map : (string -> string) -> Eden_transput.Transform.t
val keep : (string -> bool) -> Eden_transput.Transform.t
val filter_map : (string -> string option) -> Eden_transput.Transform.t

val expand : (string -> string list) -> Eden_transput.Transform.t
(** One input line to zero or more output lines. *)

val stateful :
  init:'s ->
  step:('s -> string -> 's * string list) ->
  flush:('s -> string list) ->
  Eden_transput.Transform.t

val run : Eden_transput.Transform.t -> string list -> string list
(** Pure in-process execution on lines, for tests. *)
