module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module T = Eden_transput

(* --- comm ------------------------------------------------------------ *)

let comm_step emit =
  (* Merge-walk two sorted cursors; returns a function of two "next"
     thunks. *)
  fun next_l next_r ->
    let rec go l r =
      match l, r with
      | None, None -> ()
      | Some a, None ->
          emit ("<\t" ^ a);
          go (next_l ()) None
      | None, Some b ->
          emit (">\t" ^ b);
          go None (next_r ())
      | Some a, Some b ->
          let c = String.compare a b in
          if c = 0 then begin
            emit ("=\t" ^ a);
            go (next_l ()) (next_r ())
          end
          else if c < 0 then begin
            emit ("<\t" ^ a);
            go (next_l ()) r
          end
          else begin
            emit (">\t" ^ b);
            go l (next_r ())
          end
    in
    go (next_l ()) (next_r ())

let comm left right =
  let out = ref [] in
  let cursor lst =
    let rest = ref lst in
    fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x
  in
  comm_step (fun l -> out := l :: !out) (cursor left) (cursor right);
  List.rev !out

(* --- diff ------------------------------------------------------------ *)

(* Standard O(n*m) LCS table; fine at the scale of line streams in a
   simulation.  [backtrack] recovers an edit script. *)
let lcs_table a b =
  let n = Array.length a and m = Array.length b in
  let tbl = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      tbl.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + tbl.(i + 1).(j + 1)
         else max tbl.(i + 1).(j) tbl.(i).(j + 1))
    done
  done;
  tbl

let lcs_length left right =
  let a = Array.of_list left and b = Array.of_list right in
  (lcs_table a b).(0).(0)

type edit = Keep | Del of string | Add of string

let edits a b =
  let tbl = lcs_table a b in
  let n = Array.length a and m = Array.length b in
  let rec go i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then go (i + 1) (j + 1) (Keep :: acc)
    else if j < m && (i = n || tbl.(i).(j + 1) >= tbl.(i + 1).(j)) then
      go i (j + 1) (Add b.(j) :: acc)
    else if i < n then go (i + 1) j (Del a.(i) :: acc)
    else List.rev acc
  in
  go 0 0 []

(* Group consecutive non-Keep edits into hunks and render them in the
   classic "NcM" / "NdM" / "NaM" style. *)
let diff left right =
  let a = Array.of_list left and b = Array.of_list right in
  let out = ref [] in
  let emit l = out := l :: !out in
  let flush_hunk l0 dels r0 adds =
    let dels = List.rev dels and adds = List.rev adds in
    let nd = List.length dels and na = List.length adds in
    let span n len = if len <= 1 then string_of_int n else Printf.sprintf "%d,%d" n (n + len - 1) in
    (match nd, na with
    | 0, _ -> emit (Printf.sprintf "%da%s" l0 (span (r0 + 1) na))
    | _, 0 -> emit (Printf.sprintf "%sd%d" (span (l0 + 1) nd) r0)
    | _, _ -> emit (Printf.sprintf "%sc%s" (span (l0 + 1) nd) (span (r0 + 1) na)));
    List.iter (fun l -> emit ("< " ^ l)) dels;
    if nd > 0 && na > 0 then emit "---";
    List.iter (fun l -> emit ("> " ^ l)) adds
  in
  let rec walk es li ri dels adds hunk_l hunk_r =
    let in_hunk = dels <> [] || adds <> [] in
    match es with
    | [] -> if in_hunk then flush_hunk hunk_l dels hunk_r adds
    | Keep :: rest ->
        if in_hunk then flush_hunk hunk_l dels hunk_r adds;
        walk rest (li + 1) (ri + 1) [] [] (li + 1) (ri + 1)
    | Del l :: rest ->
        let hunk_l = if in_hunk then hunk_l else li in
        let hunk_r = if in_hunk then hunk_r else ri in
        walk rest (li + 1) ri (l :: dels) adds hunk_l hunk_r
    | Add l :: rest ->
        let hunk_l = if in_hunk then hunk_l else li in
        let hunk_r = if in_hunk then hunk_r else ri in
        walk rest li (ri + 1) dels (l :: adds) hunk_l hunk_r
  in
  walk (edits a b) 0 0 [] [] 0 0;
  List.rev !out

(* --- stages ----------------------------------------------------------- *)

let two_input_stage k ?node ~name ?(capacity = 0) ?(batch = 1) ~left ~right body =
  T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
      let port = T.Port.create () in
      let w = T.Port.add_channel port ~capacity T.Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/compare") (fun () ->
          if capacity = 0 then T.Port.await_demand w;
          let lu, lc = left and ru, rc = right in
          let pl = T.Pull.connect ctx ~batch ~channel:lc lu in
          let pr = T.Pull.connect ctx ~batch ~channel:rc ru in
          body
            (fun () -> Option.map Value.to_str (T.Pull.read pl))
            (fun () -> Option.map Value.to_str (T.Pull.read pr))
            (fun l -> T.Port.write w (Value.Str l));
          T.Port.close w);
      T.Port.handlers port)

let comm_stage k ?node ?(name = "comm") ?capacity ?batch ~left ~right () =
  two_input_stage k ?node ~name ?capacity ?batch ~left ~right (fun next_l next_r emit ->
      comm_step emit next_l next_r)

let diff_stage k ?node ?(name = "diff") ?capacity ?batch ~left ~right () =
  two_input_stage k ?node ~name ?capacity ?batch ~left ~right (fun next_l next_r emit ->
      let drain next =
        let rec go acc = match next () with Some l -> go (l :: acc) | None -> List.rev acc in
        go []
      in
      let a = drain next_l in
      let b = drain next_r in
      List.iter emit (diff a b))
