(** Impure filters: stages with a secondary Report stream (§5).

    "It is also common for a program to produce a stream of Reports
    (i.e. monitoring messages) in addition to its main output stream."
    Two arrangements from the paper:

    - {b Write-only} (Figure 3): the filter actively [Deposit]s its main
      output downstream {e and} its reports to a separately nominated
      destination (typically a report window), both by push.
    - {b Read-only with channel identifiers} (Figure 4): the filter
      serves two channels, {!Eden_transput.Channel.output} and
      {!Eden_transput.Channel.report}; sinks read the one they were told
      about.  Nothing is pushed anywhere.

    A [reporting] transform is an ordinary transform that is also given
    a [report] emitter. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module T = Eden_transput

type reporting = T.Transform.next -> T.Transform.emit -> T.Transform.emit -> unit
(** [f next emit report]. *)

val with_progress : ?every:int -> label:string -> T.Transform.t -> reporting
(** Wraps a transform so it reports ["label: n items"] after every
    [every] (default 2) items and a final tally at end of stream. *)

val filter_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  upstream:Uid.t ->
  ?upstream_channel:T.Channel.t ->
  reporting ->
  Uid.t
(** Figure 4: passive output on both [Channel.output] and
    [Channel.report].  The report channel is buffered generously so an
    unwatched report stream does not stall the main one. *)

val filter_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  downstream:Uid.t ->
  ?downstream_channel:T.Channel.t ->
  report_to:Uid.t ->
  ?report_channel:T.Channel.t ->
  reporting ->
  Uid.t
(** Figure 3: active output to [downstream], reports actively pushed to
    [report_to] (on its {!T.Channel.report} by default). *)

val source_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  downstream:Uid.t ->
  ?downstream_channel:T.Channel.t ->
  report_to:Uid.t ->
  ?report_channel:T.Channel.t ->
  label:string ->
  T.Stage.gen ->
  Uid.t
(** Figure 3's source also reports; one line per item generated. *)

val source_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  label:string ->
  T.Stage.gen ->
  Uid.t
(** Figure 4's source: serves [Channel.output] with the data and
    [Channel.report] with one line per item generated. *)
