module Value = Eden_kernel.Value
module Transform = Eden_transput.Transform

let map f = Transform.map (fun v -> Value.Str (f (Value.to_str v)))

let keep pred = Transform.filter (fun v -> pred (Value.to_str v))

let filter_map f =
  Transform.filter_map (fun v ->
      match f (Value.to_str v) with Some s -> Some (Value.Str s) | None -> None)

let expand f =
  Transform.stateful ~init:()
    ~step:(fun () v -> ((), List.map (fun s -> Value.Str s) (f (Value.to_str v))))
    ~flush:(fun () -> [])

let stateful ~init ~step ~flush =
  Transform.stateful ~init
    ~step:(fun s v ->
      let s', outs = step s (Value.to_str v) in
      (s', List.map (fun x -> Value.Str x) outs))
    ~flush:(fun s -> List.map (fun x -> Value.Str x) (flush s))

let run t lines =
  List.map Value.to_str (Transform.run_list t (List.map (fun s -> Value.Str s) lines))
