(** File comparison: the other multi-input filter §5 names
    ("examples of programs with multiple inputs include file comparison
    programs and stream editors ...").

    Two classic comparators, each available as a pure function and as a
    two-input read-only Eject (a stage holding two upstream UIDs — free
    fan-in):

    - {!comm}: set comparison of two {e sorted} line streams, emitting
      ["<\tl"] (only in the first), [">\tl"] (only in the second) and
      ["=\tl"] (in both) in merged order;
    - {!diff}: an LCS-based line diff of two streams, emitting
      ed-script-style hunks with ["< "]/["> "]/["---"] detail lines. *)

val comm : string list -> string list -> string list
(** Inputs must be sorted; undefined interleaving otherwise. *)

val diff : string list -> string list -> string list
(** Empty output iff the inputs are equal. *)

val lcs_length : string list -> string list -> int
(** Length of a longest common subsequence (exposed for tests and for
    similarity metrics). *)

val comm_stage :
  Eden_kernel.Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  left:Eden_kernel.Uid.t * Eden_transput.Channel.t ->
  right:Eden_kernel.Uid.t * Eden_transput.Channel.t ->
  unit ->
  Eden_kernel.Uid.t
(** Streaming: holds at most one line per side at a time. *)

val diff_stage :
  Eden_kernel.Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  left:Eden_kernel.Uid.t * Eden_transput.Channel.t ->
  right:Eden_kernel.Uid.t * Eden_transput.Channel.t ->
  unit ->
  Eden_kernel.Uid.t
(** Buffers both inputs (LCS needs both ends), like diff(1) does. *)
