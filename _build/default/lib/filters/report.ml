module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module T = Eden_transput

type reporting = T.Transform.next -> T.Transform.emit -> T.Transform.emit -> unit

let with_progress ?(every = 2) ~label tr next emit report =
  let seen = ref 0 in
  let counted_next () =
    let item = next () in
    (match item with
    | Some _ ->
        incr seen;
        if !seen mod every = 0 then
          report (Value.Str (Printf.sprintf "%s: %d items" label !seen))
    | None -> ());
    item
  in
  tr counted_next emit;
  report (Value.Str (Printf.sprintf "%s: done, %d items" label !seen))

(* Reports must never stall the main stream when nobody watches them:
   give the report channel a deep anticipation buffer. *)
let report_capacity = 1024

let filter_ro k ?node ?(name = "reporting-filter") ?(capacity = 0) ?(batch = 1) ~upstream
    ?(upstream_channel = T.Channel.output) reporting =
  T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
      let port = T.Port.create () in
      let out = T.Port.add_channel port ~capacity T.Channel.output in
      let rep = T.Port.add_channel port ~capacity:report_capacity T.Channel.report in
      let pull = T.Pull.connect ctx ~batch ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          if capacity = 0 then T.Port.await_demand out;
          reporting (fun () -> T.Pull.read pull) (T.Port.write out) (T.Port.write rep);
          T.Port.close out;
          T.Port.close rep);
      T.Port.handlers port)

let filter_wo k ?node ?(name = "reporting-filter") ?(capacity = 1) ?(batch = 1) ~downstream
    ?(downstream_channel = T.Channel.output) ~report_to ?(report_channel = T.Channel.report)
    reporting =
  T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
      let intake = T.Intake.create () in
      let r = T.Intake.add_channel intake ~capacity T.Channel.output in
      let push = T.Push.connect ctx ~batch ~channel:downstream_channel downstream in
      let rpush = T.Push.connect ctx ~batch ~channel:report_channel report_to in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          reporting (fun () -> T.Intake.read r) (T.Push.write push) (T.Push.write rpush);
          T.Push.close push;
          T.Push.close rpush);
      T.Intake.handlers intake)

let gen_with_reports ~label gen report =
  let count = ref 0 in
  fun () ->
    match gen () with
    | Some v ->
        incr count;
        report (Value.Str (Printf.sprintf "%s: produced %d" label !count));
        Some v
    | None -> None

let source_wo k ?node ?(name = "reporting-source") ?(batch = 1) ~downstream
    ?(downstream_channel = T.Channel.output) ~report_to ?(report_channel = T.Channel.report)
    ~label gen =
  T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
      let push = T.Push.connect ctx ~batch ~channel:downstream_channel downstream in
      let rpush = T.Push.connect ctx ~batch ~channel:report_channel report_to in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          let gen = gen_with_reports ~label gen (T.Push.write rpush) in
          let rec go () =
            match gen () with
            | Some v ->
                T.Push.write push v;
                go ()
            | None ->
                T.Push.close push;
                T.Push.close rpush
          in
          go ());
      [])

let source_ro k ?node ?(name = "reporting-source") ?(capacity = 0) ~label gen =
  T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
      let port = T.Port.create () in
      let out = T.Port.add_channel port ~capacity T.Channel.output in
      let rep = T.Port.add_channel port ~capacity:report_capacity T.Channel.report in
      Kernel.spawn_worker ctx ~name:(name ^ "/produce") (fun () ->
          let gen = gen_with_reports ~label gen (T.Port.write rep) in
          let rec go () =
            T.Port.await_writable out;
            match gen () with
            | Some v ->
                T.Port.write out v;
                go ()
            | None ->
                T.Port.close out;
                T.Port.close rep
          in
          go ());
      T.Port.handlers port)
