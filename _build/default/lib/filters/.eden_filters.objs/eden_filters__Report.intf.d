lib/filters/report.mli: Eden_kernel Eden_net Eden_transput
