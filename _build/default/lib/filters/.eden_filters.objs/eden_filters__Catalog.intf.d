lib/filters/catalog.mli: Eden_transput
