lib/filters/compare.mli: Eden_kernel Eden_net Eden_transput
