lib/filters/line.mli: Eden_kernel Eden_transput
