lib/filters/sed.ml: Buffer Eden_kernel Eden_transput Eden_util Line List Printf Re Result String
