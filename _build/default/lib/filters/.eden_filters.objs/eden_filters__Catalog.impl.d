lib/filters/catalog.ml: Char Eden_kernel Eden_transput Eden_util Line List Printf Result Sed Seq Set String
