lib/filters/line.ml: Eden_kernel Eden_transput List
