lib/filters/sed.mli: Eden_kernel Eden_net Eden_transput
