lib/filters/compare.ml: Array Eden_kernel Eden_transput List Option Printf String
