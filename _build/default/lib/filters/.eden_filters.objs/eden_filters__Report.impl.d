lib/filters/report.ml: Eden_kernel Eden_transput Printf
