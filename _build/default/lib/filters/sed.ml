module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module T = Eden_transput

type address = Line of int | Pattern of Re.re

type range = Always | At of address | Between of address * address

type action =
  | Substitute of { pat : Re.re; replacement : string; global : bool }
  | Delete
  | Print
  | Transliterate of { from : string; into : string }
  | Quit
  | Insert of string
  | Append of string

type command = { range : range; action : action; mutable active : bool }
(* [active] tracks Between ranges: set when the start address matches,
   cleared after the end address matches. *)

type script = command list

(* --- parsing --------------------------------------------------------- *)

let compile_re src =
  match Re.Pcre.re src with
  | re -> Ok (Re.compile re)
  | exception _ -> Error (Printf.sprintf "bad regular expression /%s/" src)

(* Split "X<body>X<body>X..." on the delimiter X, honouring \X escapes. *)
let split_delimited line start =
  let delim = line.[start] in
  let n = String.length line in
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= n then (List.rev !parts, n)
    else if line.[i] = '\\' && i + 1 < n && line.[i + 1] = delim then begin
      Buffer.add_char buf delim;
      go (i + 2)
    end
    else if line.[i] = delim then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      go (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      go (i + 1)
    end
  in
  (* The char at [start] opens the first field. *)
  let fields, stop = go (start + 1) in
  (fields, Buffer.contents buf, stop)

let parse_address s =
  if s = "" then Error "empty address"
  else if String.for_all (fun c -> c >= '0' && c <= '9') s then Ok (Line (int_of_string s))
  else if s = "$" then Error "$ addressing needs the whole stream buffered; not supported"
  else if String.length s >= 2 && s.[0] = '/' && s.[String.length s - 1] = '/' then
    Result.map (fun re -> Pattern re) (compile_re (String.sub s 1 (String.length s - 2)))
  else Error (Printf.sprintf "bad address %S" s)

(* Addresses prefix the command: "3", "1,5", "/x/", "/a/,/b/". *)
let parse_range line =
  let n = String.length line in
  (* Scan an address token starting at i; returns (token, next). *)
  let scan i =
    if i < n && line.[i] = '/' then
      match String.index_from_opt line (i + 1) '/' with
      | Some j -> Some (String.sub line i (j - i + 1), j + 1)
      | None -> None
    else begin
      let rec digits j = if j < n && line.[j] >= '0' && line.[j] <= '9' then digits (j + 1) else j in
      let j = digits i in
      if j > i then Some (String.sub line i (j - i), j) else None
    end
  in
  match scan 0 with
  | None -> Ok (Always, 0)
  | Some (first, i) -> (
      match parse_address first with
      | Error e -> Error e
      | Ok a1 ->
          if i < n && line.[i] = ',' then
            match scan (i + 1) with
            | None -> Error "expected a second address after ,"
            | Some (second, j) -> (
                match parse_address second with
                | Error e -> Error e
                | Ok a2 -> Ok (Between (a1, a2), j))
          else Ok (At a1, i))

let strip_leading line i =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  go i

let parse_command line =
  match parse_range line with
  | Error e -> Error e
  | Ok (range, i) -> (
      let i = strip_leading line i in
      let n = String.length line in
      if i >= n then Error "missing command"
      else
        let mk action = Ok [ { range; action; active = false } ] in
        match line.[i] with
        | 'd' -> mk Delete
        | 'p' -> mk Print
        | 'q' -> mk Quit
        | 'i' when i + 1 < n && line.[i + 1] = '\\' -> mk (Insert (String.sub line (i + 2) (n - i - 2)))
        | 'a' when i + 1 < n && line.[i + 1] = '\\' -> mk (Append (String.sub line (i + 2) (n - i - 2)))
        | 's' when i + 1 < n -> (
            let fields, tail, _stop = split_delimited line (i + 1) in
            match fields with
            | [ pat; replacement ] ->
                let global = String.trim tail = "g" in
                if (not global) && String.trim tail <> "" then
                  Error (Printf.sprintf "unknown s flags %S" tail)
                else
                  Result.map
                    (fun pat -> [ { range; action = Substitute { pat; replacement; global }; active = false } ])
                    (compile_re pat)
            | _ -> Error "s needs s/pattern/replacement/")
        | 'y' when i + 1 < n -> (
            let fields, _tail, _stop = split_delimited line (i + 1) in
            match fields with
            | [ from; into ] when String.length from = String.length into ->
                mk (Transliterate { from; into })
            | [ _; _ ] -> Error "y sets must have equal length"
            | _ -> Error "y needs y/set1/set2/")
        | c -> Error (Printf.sprintf "unknown command %c" c))

let parse_script lines =
  let rec go acc lineno = function
    | [] -> Ok (List.concat (List.rev acc))
    | l :: rest ->
        let t = String.trim l in
        if t = "" || t.[0] = '#' then go acc (lineno + 1) rest
        else (
          match parse_command t with
          | Ok cmds -> go (cmds :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "script line %d (%s): %s" lineno t e))
  in
  go [] 1 lines

(* --- execution ------------------------------------------------------- *)

let address_matches addr lineno line =
  match addr with Line n -> n = lineno | Pattern re -> Re.execp re line

(* Between semantics: the start line opens the range without consulting
   the end address (so /a/,/a/ runs to the next /a/); from the following
   line on, a line matching the end address closes the range and is the
   last line in it. *)
let range_matches cmd lineno line =
  match cmd.range with
  | Always -> true
  | At a -> address_matches a lineno line
  | Between (a1, a2) ->
      if cmd.active then begin
        if address_matches a2 lineno line then cmd.active <- false;
        true
      end
      else if address_matches a1 lineno line then begin
        (* A numeric end at or before the start line makes a one-line
           range (GNU sed's rule); otherwise the range stays open and
           the end address is consulted from the next line on. *)
        (match a2 with
        | Line n when n <= lineno -> cmd.active <- false
        | Line _ | Pattern _ -> cmd.active <- true);
        true
      end
      else false

let substitute ~pat ~replacement ~global line =
  let expand m = Eden_util.Text.replace_all ~sub:"&" ~by:(Re.Group.get m 0) replacement in
  if global then Re.replace pat ~all:true ~f:expand line
  else Re.replace pat ~all:false ~f:expand line

let transliterate ~from ~into line =
  String.map (fun c -> match String.index_opt from c with Some i -> into.[i] | None -> c) line

(* Apply the whole script to one line.  Returns the lines to emit and
   whether to quit after them. *)
let apply_line script lineno line =
  let before = ref [] and after = ref [] in
  let quit = ref false in
  let current = ref (Some line) in
  let extra_prints = ref [] in
  List.iter
    (fun cmd ->
      match !current with
      | None -> ()
      | Some line_now ->
          if range_matches cmd lineno line_now then (
            match cmd.action with
            | Delete -> current := None
            | Print -> extra_prints := line_now :: !extra_prints
            | Quit -> quit := true
            | Insert text -> before := text :: !before
            | Append text -> after := text :: !after
            | Substitute { pat; replacement; global } ->
                current := Some (substitute ~pat ~replacement ~global line_now)
            | Transliterate { from; into } -> current := Some (transliterate ~from ~into line_now)))
    script;
  let outputs =
    List.rev !before
    @ List.rev !extra_prints
    @ (match !current with Some l -> [ l ] | None -> [])
    @ List.rev !after
  in
  (outputs, !quit)

(* Commands carry mutable range state, so each execution needs a fresh
   copy of the script. *)
let fresh script = List.map (fun c -> { c with active = false }) script

let transform script next emit =
  let script = fresh script in
  let rec go lineno =
    match next () with
    | None -> ()
    | Some v ->
        let line = Value.to_str v in
        let outputs, quit = apply_line script lineno line in
        List.iter (fun l -> emit (Value.Str l)) outputs;
        if not quit then go (lineno + 1)
  in
  go 1

let run_lines script lines = Line.run (transform script) lines

let two_input_stage k ?node ?(name = "sed") ?(capacity = 0) ?(batch = 1) ~commands ~text () =
  T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
      let port = T.Port.create () in
      let w = T.Port.add_channel port ~capacity T.Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/edit") (fun () ->
          if capacity = 0 then T.Port.await_demand w;
          (* First input: the editing commands (drained in full). *)
          let cuid, cchan = commands in
          let cpull = T.Pull.connect ctx ~batch ~channel:cchan cuid in
          let script_lines = ref [] in
          T.Pull.iter (fun v -> script_lines := Value.to_str v :: !script_lines) cpull;
          match parse_script (List.rev !script_lines) with
          | Error e -> failwith ("sed: " ^ e)
          | Ok script ->
              (* Second input: the text stream. *)
              let tuid, tchan = text in
              let tpull = T.Pull.connect ctx ~batch ~channel:tchan tuid in
              transform script (fun () -> T.Pull.read tpull) (T.Port.write w);
              T.Port.close w);
      T.Port.handlers port)
