lib/net/net.ml: Array Eden_sched Eden_util Format Hashtbl
