lib/net/net.mli: Eden_sched Format
