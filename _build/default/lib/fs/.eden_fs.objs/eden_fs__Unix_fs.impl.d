lib/fs/unix_fs.ml: Hashtbl List String
