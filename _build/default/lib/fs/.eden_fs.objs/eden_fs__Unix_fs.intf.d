lib/fs/unix_fs.mli:
