lib/fs/fs_eject.mli: Eden_kernel Eden_net Eden_transput Unix_fs
