lib/fs/fs_eject.ml: Eden_kernel Eden_sched Eden_transput Eden_util List Printf Unix_fs
