type error = Enoent | Enotdir | Eisdir | Eexist | Enotempty | Einval

exception Error of error * string

let error_message = function
  | Enoent -> "no such file or directory"
  | Enotdir -> "not a directory"
  | Eisdir -> "is a directory"
  | Eexist -> "file exists"
  | Enotempty -> "directory not empty"
  | Einval -> "invalid argument"

type node = File of { mutable content : string } | Dir of (string, node) Hashtbl.t

type t = { root : (string, node) Hashtbl.t }

let create () = { root = Hashtbl.create 16 }

let normalise path =
  let raw = String.split_on_char '/' path in
  let step acc comp =
    match comp with
    | "" | "." -> acc
    | ".." -> ( match acc with [] -> [] | _ :: rest -> rest)
    | c ->
        if String.contains c '\x00' then raise (Error (Einval, path));
        c :: acc
  in
  List.rev (List.fold_left step [] raw)

let path_of_components comps = "/" ^ String.concat "/" comps

(* Walk to the parent directory of the final component. *)
let rec descend tbl comps path =
  match comps with
  | [] -> invalid_arg "Unix_fs.descend: empty"
  | [ last ] -> (tbl, last)
  | c :: rest -> (
      match Hashtbl.find_opt tbl c with
      | Some (Dir sub) -> descend sub rest path
      | Some (File _) -> raise (Error (Enotdir, path))
      | None -> raise (Error (Enoent, path)))

let lookup t path =
  let comps = normalise path in
  match comps with
  | [] -> Some (Dir t.root)
  | comps -> (
      let parent, last = descend t.root comps path in
      Hashtbl.find_opt parent last)

let mkdir t path =
  match normalise path with
  | [] -> raise (Error (Eexist, path))
  | comps -> (
      let parent, last = descend t.root comps path in
      match Hashtbl.find_opt parent last with
      | Some _ -> raise (Error (Eexist, path))
      | None -> Hashtbl.replace parent last (Dir (Hashtbl.create 8)))

let mkdir_p t path =
  let comps = normalise path in
  let rec go tbl = function
    | [] -> ()
    | c :: rest -> (
        match Hashtbl.find_opt tbl c with
        | Some (Dir sub) -> go sub rest
        | Some (File _) -> raise (Error (Enotdir, path))
        | None ->
            let sub = Hashtbl.create 8 in
            Hashtbl.replace tbl c (Dir sub);
            go sub rest)
  in
  go t.root comps

let rmdir t path =
  match normalise path with
  | [] -> raise (Error (Einval, path))
  | comps -> (
      let parent, last = descend t.root comps path in
      match Hashtbl.find_opt parent last with
      | Some (Dir sub) ->
          if Hashtbl.length sub > 0 then raise (Error (Enotempty, path));
          Hashtbl.remove parent last
      | Some (File _) -> raise (Error (Enotdir, path))
      | None -> raise (Error (Enoent, path)))

let readdir t path =
  match lookup t path with
  | Some (Dir tbl) -> List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
  | Some (File _) -> raise (Error (Enotdir, path))
  | None -> raise (Error (Enoent, path))

let write_file t path content =
  match normalise path with
  | [] -> raise (Error (Eisdir, path))
  | comps -> (
      let parent, last = descend t.root comps path in
      match Hashtbl.find_opt parent last with
      | Some (Dir _) -> raise (Error (Eisdir, path))
      | Some (File f) -> f.content <- content
      | None -> Hashtbl.replace parent last (File { content }))

let append_file t path content =
  match normalise path with
  | [] -> raise (Error (Eisdir, path))
  | comps -> (
      let parent, last = descend t.root comps path in
      match Hashtbl.find_opt parent last with
      | Some (Dir _) -> raise (Error (Eisdir, path))
      | Some (File f) -> f.content <- f.content ^ content
      | None -> Hashtbl.replace parent last (File { content }))

let read_file t path =
  match lookup t path with
  | Some (File f) -> f.content
  | Some (Dir _) -> raise (Error (Eisdir, path))
  | None -> raise (Error (Enoent, path))

let unlink t path =
  match normalise path with
  | [] -> raise (Error (Eisdir, path))
  | comps -> (
      let parent, last = descend t.root comps path in
      match Hashtbl.find_opt parent last with
      | Some (File _) -> Hashtbl.remove parent last
      | Some (Dir _) -> raise (Error (Eisdir, path))
      | None -> raise (Error (Enoent, path)))

let rename t src dst =
  let src_comps = normalise src and dst_comps = normalise dst in
  if src_comps = [] || dst_comps = [] then raise (Error (Einval, src));
  let sparent, slast = descend t.root src_comps src in
  let node =
    match Hashtbl.find_opt sparent slast with
    | Some n -> n
    | None -> raise (Error (Enoent, src))
  in
  let dparent, dlast = descend t.root dst_comps dst in
  (match Hashtbl.find_opt dparent dlast with
  | Some (Dir _) -> raise (Error (Eexist, dst))
  | Some (File _) | None -> ());
  Hashtbl.remove sparent slast;
  Hashtbl.replace dparent dlast node

let exists t path = lookup t path <> None
let is_dir t path = match lookup t path with Some (Dir _) -> true | _ -> false
let is_file t path = match lookup t path with Some (File _) -> true | _ -> false

let size t path =
  match lookup t path with
  | Some (File f) -> String.length f.content
  | Some (Dir _) -> raise (Error (Eisdir, path))
  | None -> raise (Error (Enoent, path))

let rec count_node (files, bytes) = function
  | File f -> (files + 1, bytes + String.length f.content)
  | Dir tbl -> Hashtbl.fold (fun _ n acc -> count_node acc n) tbl (files, bytes)

let totals t = count_node (0, 0) (Dir t.root)
let total_files t = fst (totals t)
let total_bytes t = snd (totals t)
