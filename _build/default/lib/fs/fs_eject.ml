module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module T = Eden_transput

let op_new_stream = "NewStream"
let op_use_stream = "UseStream"
let op_read_file = "ReadFile"
let op_write_file = "WriteFile"
let op_remove = "Remove"
let op_make_dir = "MakeDir"
let op_list_dir = "ListDir"
let op_close = "Close"
let op_await = "Await"

let fs_error f =
  try f ()
  with Unix_fs.Error (e, path) ->
    raise (Kernel.Eden_error (Printf.sprintf "%s: %s" path (Unix_fs.error_message e)))

(* A UnixFile Eject streaming [lines] out of its Transfer port.  It
   never checkpoints, so Close makes it disappear for good (§7). *)
let reader_eject k ~node lines =
  Kernel.create_eject k ~node ~dispatch:Kernel.Concurrent ~type_name:"UnixFile"
    (fun ctx ~passive:_ ->
      let port = T.Port.create () in
      let w = T.Port.add_channel port ~capacity:8 T.Channel.output in
      Kernel.spawn_worker ctx ~name:"UnixFile/stream" (fun () ->
          List.iter (fun line -> T.Port.write w (Value.Str line)) lines;
          T.Port.close w);
      ( op_close,
        fun _ ->
          Kernel.destroy ctx;
          Value.Unit )
      :: T.Port.handlers port)

(* A UnixFile Eject recording a stream into [path] of [fs]. *)
let writer_eject k ~node fs path stream =
  Kernel.create_eject k ~node ~dispatch:Kernel.Concurrent ~type_name:"UnixFile"
    (fun ctx ~passive:_ ->
      let committed = Eden_sched.Ivar.create () in
      Kernel.spawn_worker ctx ~name:"UnixFile/record" (fun () ->
          let pull = T.Pull.connect ctx stream in
          let lines = ref [] in
          T.Pull.iter (fun v -> lines := Value.to_str v :: !lines) pull;
          fs_error (fun () ->
              Unix_fs.write_file fs path (Eden_util.Text.join_lines (List.rev !lines)));
          Eden_sched.Ivar.fill committed ());
      [
        ( op_await,
          fun _ ->
            Eden_sched.Ivar.read committed;
            Kernel.destroy ctx;
            Value.Unit );
      ])

let create k ?node fs =
  let node = match node with Some n -> n | None -> List.hd (Kernel.nodes k) in
  Kernel.create_eject k ~node ~dispatch:Kernel.Concurrent ~type_name:"UnixFileSystem"
    (fun _ctx ~passive:_ ->
      [
        ( op_new_stream,
          fun arg ->
            let path = Value.to_str arg in
            let content = fs_error (fun () -> Unix_fs.read_file fs path) in
            Value.Uid (reader_eject k ~node (Eden_util.Text.split_lines content)) );
        ( op_use_stream,
          fun arg ->
            let p, cap = Value.to_pair arg in
            let path = Value.to_str p and stream = Value.to_uid cap in
            Value.Uid (writer_eject k ~node fs path stream) );
        ( op_read_file,
          fun arg -> Value.Str (fs_error (fun () -> Unix_fs.read_file fs (Value.to_str arg))) );
        ( op_write_file,
          fun arg ->
            let p, content = Value.to_pair arg in
            fs_error (fun () -> Unix_fs.write_file fs (Value.to_str p) (Value.to_str content));
            Value.Unit );
        ( op_remove,
          fun arg ->
            fs_error (fun () -> Unix_fs.unlink fs (Value.to_str arg));
            Value.Unit );
        ( op_make_dir,
          fun arg ->
            fs_error (fun () -> Unix_fs.mkdir_p fs (Value.to_str arg));
            Value.Unit );
        ( op_list_dir,
          fun arg ->
            let names = fs_error (fun () -> Unix_fs.readdir fs (Value.to_str arg)) in
            Value.List (List.map (fun n -> Value.Str n) names) );
      ])

(* --- Client side ---------------------------------------------------- *)

let new_stream ctx ~fs path = Value.to_uid (Kernel.call ctx fs ~op:op_new_stream (Value.Str path))

let use_stream ctx ~fs path stream =
  Value.to_uid (Kernel.call ctx fs ~op:op_use_stream (Value.pair (Value.Str path) (Value.Uid stream)))

let await_writer ctx writer = Value.to_unit (Kernel.call ctx writer ~op:op_await Value.Unit)

let close_stream ctx stream = Value.to_unit (Kernel.call ctx stream ~op:op_close Value.Unit)

let read_lines ctx ~fs path =
  let stream = new_stream ctx ~fs path in
  let pull = T.Pull.connect ctx stream in
  let lines = ref [] in
  T.Pull.iter (fun v -> lines := Value.to_str v :: !lines) pull;
  close_stream ctx stream;
  List.rev !lines

let copy_through ctx ~fs ~src ~dst transforms =
  let k = Kernel.kernel ctx in
  let stream = new_stream ctx ~fs src in
  let last =
    List.fold_left
      (fun upstream tr -> T.Stage.filter_ro k ~upstream tr)
      stream transforms
  in
  let writer = use_stream ctx ~fs dst last in
  await_writer ctx writer
