(** The bootstrap transput system of §7.

    One ["UnixFileSystem"] Eject per (simulated) machine wraps a
    {!Unix_fs.t} and responds to:

    - [NewStream(path)] — returns the UID of a freshly created
      [UnixFile] Eject whose purpose is to respond to [Transfer]
      invocations with the file's contents, line by line.  When the user
      invokes [Close] on it, it deactivates and — never having
      checkpointed — disappears.
    - [UseStream(path, capability)] — the opposite: creates a [UnixFile]
      Eject that repeatedly invokes [Transfer] on the capability and
      records the data it receives; at end of stream the Unix file is
      written and the writer becomes awaitable via [Await].
    - [ReadFile], [WriteFile], [Remove], [MakeDir], [ListDir] —
      direct conveniences used by utilities and tests.

    Streams are line-oriented: each [Transfer] item is a [Value.Str]
    holding one line without its newline. *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value

val create : Kernel.t -> ?node:Eden_net.Net.node_id -> Unix_fs.t -> Uid.t
(** The per-machine ["UnixFileSystem"] Eject. *)

(** Operation names, for callers building invocations by hand. *)

val op_new_stream : string
val op_use_stream : string
val op_read_file : string
val op_write_file : string
val op_remove : string
val op_make_dir : string
val op_list_dir : string
val op_close : string
val op_await : string

(** {1 Client conveniences}

    Thin wrappers over the invocations above; all must run in a fiber. *)

val new_stream : Kernel.ctx -> fs:Uid.t -> string -> Uid.t
(** @raise Kernel.Eden_error on a missing file. *)

val use_stream : Kernel.ctx -> fs:Uid.t -> string -> Uid.t -> Uid.t
(** [use_stream ctx ~fs path stream] starts recording [stream] into
    [path]; returns the writer Eject to [await_writer] on. *)

val await_writer : Kernel.ctx -> Uid.t -> unit
(** Blocks until the writer has committed the file (and destroyed
    itself). *)

val close_stream : Kernel.ctx -> Uid.t -> unit

val read_lines : Kernel.ctx -> fs:Uid.t -> string -> string list
(** [NewStream] + drain + [Close]. *)

val copy_through :
  Kernel.ctx ->
  fs:Uid.t ->
  src:string ->
  dst:string ->
  Eden_transput.Transform.t list ->
  unit
(** The §7 demonstration: stream a Unix file out through a pipeline of
    read-only filter Ejects and record the result into another Unix
    file; blocks until committed. *)
