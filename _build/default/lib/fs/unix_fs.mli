(** An in-memory Unix-like file system.

    The paper's prototype bootstrapped its transput system over the Unix
    file system (§7: "currently most data of interest is in the Unix
    file system").  This module supplies that substrate: a tree of
    directories and byte files with absolute-path naming.  It is plain
    mutable state with no Ejects or fibers involved; the bootstrap
    Ejects in {!Fs_eject} wrap it.

    Paths are Unix-style: absolute ([/a/b]), with ["."], [".."] and
    repeated slashes normalised.  Relative paths are resolved against
    the root. *)

type t

type error =
  | Enoent  (** No such file or directory. *)
  | Enotdir  (** A non-final path component is not a directory. *)
  | Eisdir  (** File operation on a directory. *)
  | Eexist  (** Target already exists. *)
  | Enotempty  (** Directory not empty. *)
  | Einval  (** Malformed path or argument. *)

exception Error of error * string
(** The string is the offending path. *)

val error_message : error -> string

val create : unit -> t
(** An empty file system containing only the root directory. *)

(** {1 Paths} *)

val normalise : string -> string list
(** Path to component list; [".."] above the root clamps to the root.
    @raise Error Einval on empty components other than the root. *)

val path_of_components : string list -> string

(** {1 Directories} *)

val mkdir : t -> string -> unit
(** @raise Error Eexist / Enoent / Enotdir. *)

val mkdir_p : t -> string -> unit
(** Creates missing ancestors; succeeds if the directory exists. *)

val rmdir : t -> string -> unit
(** @raise Error Enotempty if non-empty; Einval on the root. *)

val readdir : t -> string -> string list
(** Entry names, sorted. *)

(** {1 Files} *)

val write_file : t -> string -> string -> unit
(** Create or truncate. *)

val append_file : t -> string -> string -> unit
(** Creates the file if missing. *)

val read_file : t -> string -> string
val unlink : t -> string -> unit
val rename : t -> string -> string -> unit
(** Moves a file or directory; replaces an existing file target. *)

(** {1 Queries} *)

val exists : t -> string -> bool
val is_dir : t -> string -> bool
val is_file : t -> string -> bool
val size : t -> string -> int
(** @raise Error for missing paths or directories. *)

val total_files : t -> int
val total_bytes : t -> int
