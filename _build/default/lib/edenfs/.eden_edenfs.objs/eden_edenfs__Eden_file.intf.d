lib/edenfs/eden_file.mli: Eden_kernel Eden_net Eden_transput
