lib/edenfs/eden_file.ml: Eden_kernel Eden_transput List Printf
