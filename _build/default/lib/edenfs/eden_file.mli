(** Eden-native files: files as active Ejects (§2).

    "In Eden, files are Ejects: they are active rather than passive
    entities.  An Eden file would itself be able to respond to open,
    close, read and write invocations rather than being a mere data
    structure acted upon by operating system primitives.  Once a file
    has been written, the data is committed to stable storage by
    Checkpointing."

    This module is the §7 "full Eden file system" subset (transactions
    excluded, as there).  A file Eject supports {e two} protocols at
    once, the possibility §6 raises explicitly:

    - the {b stream} protocol: [OpenRead] mints a capability channel
      serving a snapshot of the contents line by line; [OpenWrite] mints
      a capability channel accepting deposits, whose end-of-stream
      commits the new contents (and checkpoints);
    - a {b Map} protocol for random access: [ReadAt], [WriteAt],
      [Size], [TruncateTo] — each write commits immediately.

    Contents are committed by Checkpoint, so a crashed file Eject
    reactivates with its last committed contents; writes whose stream
    had not reached end-of-stream at the crash are lost, exactly the
    passive-representation semantics of §1. *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module T = Eden_transput

val create :
  Kernel.t -> ?node:Eden_net.Net.node_id -> ?initial:string list -> unit -> Uid.t

(** Operation names. *)

val op_open_read : string
val op_open_write : string
val op_read_at : string
val op_write_at : string
val op_size : string
val op_truncate_to : string

(** {1 Client conveniences} (fiber context) *)

val open_read : Kernel.ctx -> Uid.t -> T.Channel.t
(** A capability channel over a snapshot of the current contents;
    concurrent readers each get their own. *)

val read_all : Kernel.ctx -> Uid.t -> string list
(** [open_read] and drain. *)

val open_write : Kernel.ctx -> ?append:bool -> Uid.t -> T.Channel.t
(** A capability channel accepting this writer's lines; contents commit
    atomically when the writer sends end of stream.  Concurrent writers
    are isolated; last commit wins. *)

val write_all : Kernel.ctx -> ?append:bool -> Uid.t -> string list -> unit
(** [open_write], push everything, close (= commit). *)

val read_at : Kernel.ctx -> Uid.t -> int -> string
(** @raise Kernel.Eden_error when out of bounds. *)

val write_at : Kernel.ctx -> Uid.t -> int -> string -> unit
(** In-place line update, committed immediately.
    @raise Kernel.Eden_error when out of bounds. *)

val size : Kernel.ctx -> Uid.t -> int
(** Number of lines. *)

val truncate_to : Kernel.ctx -> Uid.t -> int -> unit
(** Keep the first [n] lines.  @raise Kernel.Eden_error on negative
    [n]. *)
