module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module T = Eden_transput

let op_open_read = "OpenRead"
let op_open_write = "OpenWrite"
let op_read_at = "ReadAt"
let op_write_at = "WriteAt"
let op_size = "Size"
let op_truncate_to = "TruncateTo"

let encode_lines lines = Value.List (List.map (fun l -> Value.Str l) lines)
let decode_lines v = List.map Value.to_str (Value.to_list v)

let create k ?node ?(initial = []) () =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:"EdenFile"
    (fun ctx ~passive ->
      (* Contents live as a line list; every commit checkpoints, which
         is the only way this Eject touches stable storage (§1). *)
      let contents =
        ref (match passive with Some v -> decode_lines v | None -> initial)
      in
      let commit () = Kernel.checkpoint ctx (encode_lines !contents) in
      (* Make the creation-time contents durable too. *)
      if passive = None then commit ();
      let port = T.Port.create () in
      let intake = T.Intake.create () in
      let bounds_check i =
        if i < 0 || i >= List.length !contents then
          raise
            (Kernel.Eden_error
               (Printf.sprintf "line %d out of bounds (size %d)" i (List.length !contents)))
      in
      [
        ( op_open_read,
          fun _ ->
            (* Serve a snapshot behind a fresh capability channel:
               concurrent readers do not steal from each other, and a
               concurrent commit does not tear a reader's view. *)
            let snapshot = !contents in
            let chan = T.Channel.Cap (Kernel.mint ctx) in
            let w = T.Port.add_channel port ~capacity:(1 + List.length snapshot) chan in
            List.iter (fun l -> T.Port.write w (Value.Str l)) snapshot;
            T.Port.close w;
            T.Channel.to_value chan );
        ( op_open_write,
          fun arg ->
            let append = match arg with Value.Bool b -> b | _ -> false in
            let chan = T.Channel.Cap (Kernel.mint ctx) in
            let r = T.Intake.add_channel intake ~capacity:8 chan in
            (* The writer's lines accumulate privately; end of stream
               commits them atomically. *)
            Kernel.spawn_worker ctx ~name:"EdenFile/writer" (fun () ->
                let acc = ref [] in
                let rec drain () =
                  match T.Intake.read r with
                  | Some v ->
                      acc := Value.to_str v :: !acc;
                      drain ()
                  | None ->
                      let fresh = List.rev !acc in
                      contents := (if append then !contents @ fresh else fresh);
                      commit ()
                in
                drain ());
            T.Channel.to_value chan );
        ( op_read_at,
          fun arg ->
            let i = Value.to_int arg in
            bounds_check i;
            Value.Str (List.nth !contents i) );
        ( op_write_at,
          fun arg ->
            let idx, line = Value.to_pair arg in
            let i = Value.to_int idx and line = Value.to_str line in
            bounds_check i;
            contents := List.mapi (fun j l -> if j = i then line else l) !contents;
            commit ();
            Value.Unit );
        (op_size, fun _ -> Value.Int (List.length !contents));
        ( op_truncate_to,
          fun arg ->
            let n = Value.to_int arg in
            if n < 0 then raise (Kernel.Eden_error "negative size");
            contents := List.filteri (fun i _ -> i < n) !contents;
            commit ();
            Value.Unit );
      ]
      @ T.Port.handlers port
      @ T.Intake.handlers intake)

(* --- Client side ---------------------------------------------------- *)

let open_read ctx file = T.Channel.of_value (Kernel.call ctx file ~op:op_open_read Value.Unit)

let read_all ctx file =
  let chan = open_read ctx file in
  let pull = T.Pull.connect ctx ~batch:8 ~channel:chan file in
  let acc = ref [] in
  T.Pull.iter (fun v -> acc := Value.to_str v :: !acc) pull;
  List.rev !acc

let open_write ctx ?(append = false) file =
  T.Channel.of_value (Kernel.call ctx file ~op:op_open_write (Value.Bool append))

let write_all ctx ?append file lines =
  let chan = open_write ctx ?append file in
  let push = T.Push.connect ctx ~batch:8 ~channel:chan file in
  List.iter (fun l -> T.Push.write push (Value.Str l)) lines;
  T.Push.close push

let read_at ctx file i = Value.to_str (Kernel.call ctx file ~op:op_read_at (Value.Int i))

let write_at ctx file i line =
  Value.to_unit (Kernel.call ctx file ~op:op_write_at (Value.pair (Value.Int i) (Value.Str line)))

let size ctx file = Value.to_int (Kernel.call ctx file ~op:op_size Value.Unit)

let truncate_to ctx file n =
  Value.to_unit (Kernel.call ctx file ~op:op_truncate_to (Value.Int n))
