(** Hierarchical naming over directory Ejects.

    §2: "it is, of course, possible to enter the UID of any Eject in a
    directory, so arbitrary networks of directories can be
    constructed."  This module walks such networks with Unix-style
    paths: each component is a [Lookup] on the directory found so far.
    There is no kernel involvement and no special file descriptors —
    path resolution is just invocations, which is the paper's
    conclusion about redirection generalised to naming.

    Paths use [/] separators; leading and duplicate separators are
    tolerated; ["."] and [".."] are {e not} interpreted (a directory
    network need not be a tree, so dot-dot has no canonical meaning). *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

val split : string -> string list
(** Path to components.  @raise Invalid_argument on ["."]/[".."]
    components. *)

val resolve : Kernel.ctx -> root:Uid.t -> string -> Uid.t option
(** [resolve ctx ~root "/a/b/c"]: [Lookup a] on [root], [Lookup b] on
    the result, and so on.  [None] if any step is missing; the root
    itself for the empty path. *)

val bind : Kernel.ctx -> root:Uid.t -> string -> Uid.t -> unit
(** Binds the final component, creating fresh directory Ejects for any
    missing intermediate components.  @raise Kernel.Eden_error if the
    final name is already bound, or if an intermediate component exists
    but does not behave as a directory. *)

val unbind : Kernel.ctx -> root:Uid.t -> string -> unit
(** Removes the final binding.  @raise Kernel.Eden_error when the path
    does not resolve. *)

val list : Kernel.ctx -> root:Uid.t -> string -> string list option
(** The streamed listing of the directory at the path. *)
