module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module T = Eden_transput

let op_lookup = "Lookup"
let op_add_entry = "AddEntry"
let op_delete_entry = "DeleteEntry"
let op_list = "List"

(* Entries in the passive representation: List [ List [Str; Uid]; ... ] *)
let encode_entries entries =
  Value.List (List.map (fun (name, uid) -> Value.pair (Value.Str name) (Value.Uid uid)) entries)

let decode_entries v =
  List.map
    (fun p ->
      let name, uid = Value.to_pair p in
      (Value.to_str name, Value.to_uid uid))
    (Value.to_list v)

let create k ?node () =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:"Directory"
    (fun ctx ~passive ->
      let entries = ref (match passive with Some v -> decode_entries v | None -> []) in
      let save () = Kernel.checkpoint ctx (encode_entries !entries) in
      let port = T.Port.create () in
      [
        ( op_lookup,
          fun arg ->
            let name = Value.to_str arg in
            match List.assoc_opt name !entries with
            | Some uid -> Value.Uid uid
            | None -> raise (Kernel.Eden_error ("not found: " ^ name)) );
        ( op_add_entry,
          fun arg ->
            let name, uid = Value.to_pair arg in
            let name = Value.to_str name and uid = Value.to_uid uid in
            if List.mem_assoc name !entries then
              raise (Kernel.Eden_error ("already bound: " ^ name));
            entries := (name, uid) :: !entries;
            save ();
            Value.Unit );
        ( op_delete_entry,
          fun arg ->
            let name = Value.to_str arg in
            if not (List.mem_assoc name !entries) then
              raise (Kernel.Eden_error ("not found: " ^ name));
            entries := List.remove_assoc name !entries;
            save ();
            Value.Unit );
        ( op_list,
          fun _ ->
            (* Prepare to receive Read invocations: mint a channel, fill
               it with the printable listing, hand back the capability. *)
            let chan = T.Channel.Cap (Kernel.mint ctx) in
            let w = T.Port.add_channel port ~capacity:(1 + List.length !entries) chan in
            let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) !entries in
            List.iter
              (fun (name, uid) ->
                T.Port.write w
                  (Value.Str (Printf.sprintf "%-24s %s" name (Uid.to_string uid))))
              sorted;
            T.Port.close w;
            T.Channel.to_value chan );
      ]
      @ T.Port.handlers port)

let concatenator k ?node dirs =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:"DirectoryConcatenator"
    (fun ctx ~passive ->
      (* The directory list itself is checkpointed so a recovered
         concatenator still knows its search path. *)
      let dirs =
        match passive with
        | Some v -> List.map Value.to_uid (Value.to_list v)
        | None ->
            Kernel.checkpoint ctx (Value.List (List.map (fun d -> Value.Uid d) dirs));
            dirs
      in
      [
        ( op_lookup,
          fun arg ->
            let rec try_dirs = function
              | [] -> raise (Kernel.Eden_error ("not found: " ^ Value.to_str arg))
              | d :: rest -> (
                  match Kernel.invoke ctx d ~op:op_lookup arg with
                  | Ok v -> v
                  | Error _ -> try_dirs rest)
            in
            try_dirs dirs );
      ])

(* --- Client side ---------------------------------------------------- *)

let lookup ctx ~dir name =
  match Kernel.invoke ctx dir ~op:op_lookup (Value.Str name) with
  | Ok v -> Some (Value.to_uid v)
  | Error _ -> None

let add_entry ctx ~dir name uid =
  Value.to_unit (Kernel.call ctx dir ~op:op_add_entry (Value.pair (Value.Str name) (Value.Uid uid)))

let delete_entry ctx ~dir name =
  Value.to_unit (Kernel.call ctx dir ~op:op_delete_entry (Value.Str name))

let list_lines ctx ~dir =
  let chan = T.Channel.of_value (Kernel.call ctx dir ~op:op_list Value.Unit) in
  let pull = T.Pull.connect ctx ~channel:chan ~batch:4 dir in
  let lines = ref [] in
  T.Pull.iter (fun v -> lines := Value.to_str v :: !lines) pull;
  List.rev !lines
