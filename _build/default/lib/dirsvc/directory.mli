(** Eden directory Ejects (§2 of the paper).

    A directory maps mnemonic strings to UIDs.  It responds to
    [Lookup], [AddEntry], [DeleteEntry] — and to [List], which follows
    the paper exactly: "the effect of a List invocation is to prepare
    the directory to receive a number of Read invocations, which
    transfer a printable representation of the directory's contents to
    the reader".  Concretely, [List] mints a fresh capability channel,
    loads the listing behind it, and returns the channel identifier; the
    caller then [Transfer]s from that channel like from any other
    source.  Directories therefore {e are} stream sources — behavioural
    compatibility in action.

    Directories checkpoint after every mutation, so they survive
    crashes; since entries are [Value.t] UIDs the capabilities come back
    intact.

    The {!concatenator} implements §2's Directory Concatenator: given a
    list of directories it behaves as their ordered union under
    [Lookup] — the PATH mechanism — and is behaviourally substitutable
    for a directory wherever only [Lookup] is used. *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value

val create : Kernel.t -> ?node:Eden_net.Net.node_id -> unit -> Uid.t
val concatenator : Kernel.t -> ?node:Eden_net.Net.node_id -> Uid.t list -> Uid.t

val op_lookup : string
val op_add_entry : string
val op_delete_entry : string
val op_list : string

(** {1 Client conveniences} (fiber context) *)

val lookup : Kernel.ctx -> dir:Uid.t -> string -> Uid.t option
(** [None] when the name is absent ([Lookup] replies an error). *)

val add_entry : Kernel.ctx -> dir:Uid.t -> string -> Uid.t -> unit
(** @raise Kernel.Eden_error if the name is already bound. *)

val delete_entry : Kernel.ctx -> dir:Uid.t -> string -> unit

val list_lines : Kernel.ctx -> dir:Uid.t -> string list
(** Invoke [List] and drain the returned stream: one printable line per
    entry, sorted by name. *)
