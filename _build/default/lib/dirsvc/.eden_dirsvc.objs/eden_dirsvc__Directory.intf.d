lib/dirsvc/directory.mli: Eden_kernel Eden_net
