lib/dirsvc/namespace.ml: Directory Eden_kernel List String
