lib/dirsvc/namespace.mli: Eden_kernel
