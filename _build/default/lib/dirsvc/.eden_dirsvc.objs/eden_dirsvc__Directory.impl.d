lib/dirsvc/directory.ml: Eden_kernel Eden_transput List Printf String
