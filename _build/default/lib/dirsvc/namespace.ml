module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value

let split path =
  let comps = List.filter (fun c -> c <> "") (String.split_on_char '/' path) in
  List.iter
    (fun c -> if c = "." || c = ".." then invalid_arg "Namespace.split: . and .. not supported")
    comps;
  comps

let resolve ctx ~root path =
  let rec walk dir = function
    | [] -> Some dir
    | c :: rest -> (
        match Directory.lookup ctx ~dir c with
        | Some next -> walk next rest
        | None -> None)
  in
  walk root (split path)

let bind ctx ~root path target =
  match List.rev (split path) with
  | [] -> raise (Kernel.Eden_error "cannot bind the root")
  | last :: rev_dirs ->
      let dirs = List.rev rev_dirs in
      let parent =
        List.fold_left
          (fun dir c ->
            match Directory.lookup ctx ~dir c with
            | Some next -> next
            | None ->
                (* Create the missing intermediate directory and enter
                   it — building the network as we walk. *)
                let fresh = Directory.create (Kernel.kernel ctx) () in
                Directory.add_entry ctx ~dir c fresh;
                fresh)
          root dirs
      in
      Directory.add_entry ctx ~dir:parent last target

let unbind ctx ~root path =
  match List.rev (split path) with
  | [] -> raise (Kernel.Eden_error "cannot unbind the root")
  | last :: rev_dirs -> (
      let dir_path = String.concat "/" (List.rev rev_dirs) in
      match resolve ctx ~root dir_path with
      | Some parent -> Directory.delete_entry ctx ~dir:parent last
      | None -> raise (Kernel.Eden_error ("no such path: " ^ path)))

let list ctx ~root path =
  match resolve ctx ~root path with
  | Some dir -> (
      match Directory.list_lines ctx ~dir with
      | lines -> Some lines
      | exception Kernel.Eden_error _ -> None)
  | None -> None
