module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  (* Each node carries a sequence number so that equal keys pop in
     insertion order: the event loop must be FIFO among simultaneous
     events or the simulation would be non-deterministic. *)
  type 'a node = {
    key : Ord.t;
    seq : int;
    value : 'a;
    left : 'a tree;
    right : 'a tree;
    rank : int;
  }

  and 'a tree = Leaf | Node of 'a node

  type 'a t = { tree : 'a tree; size : int; next_seq : int }

  let empty = { tree = Leaf; size = 0; next_seq = 0 }
  let is_empty t = t.size = 0
  let size t = t.size

  let rank = function Leaf -> 0 | Node n -> n.rank

  let less a b =
    let c = Ord.compare a.key b.key in
    if c <> 0 then c < 0 else a.seq < b.seq

  let make_node key seq value l r =
    if rank l >= rank r then Node { key; seq; value; left = l; right = r; rank = rank r + 1 }
    else Node { key; seq; value; left = r; right = l; rank = rank l + 1 }

  let rec merge a b =
    match a, b with
    | Leaf, t | t, Leaf -> t
    | Node na, Node nb ->
        if less na nb then make_node na.key na.seq na.value na.left (merge na.right b)
        else make_node nb.key nb.seq nb.value nb.left (merge a nb.right)

  let insert key value t =
    let single = Node { key; seq = t.next_seq; value; left = Leaf; right = Leaf; rank = 1 } in
    { tree = merge t.tree single; size = t.size + 1; next_seq = t.next_seq + 1 }

  let find_min t = match t.tree with Leaf -> None | Node n -> Some (n.key, n.value)

  let delete_min t =
    match t.tree with
    | Leaf -> None
    | Node n -> Some (n.key, n.value, { t with tree = merge n.left n.right; size = t.size - 1 })

  let of_list kvs = List.fold_left (fun t (k, v) -> insert k v t) empty kvs

  let to_sorted_list t =
    let rec go t acc =
      match delete_min t with None -> List.rev acc | Some (k, v, t') -> go t' ((k, v) :: acc)
    in
    go t []
end
