type 'a t = { front : 'a list; back : 'a list; len : int }

let empty = { front = []; back = []; len = 0 }
let is_empty t = t.len = 0
let length t = t.len

let push x t = { t with back = x :: t.back; len = t.len + 1 }

let pop t =
  match t.front with
  | x :: front -> Some (x, { t with front; len = t.len - 1 })
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | x :: front -> Some (x, { front; back = []; len = t.len - 1 }))

let peek t =
  match t.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev t.back with [] -> None | x :: _ -> Some x)

let of_list xs = { front = xs; back = []; len = List.length xs }

let to_list t = t.front @ List.rev t.back

let fold f acc t = List.fold_left f acc (to_list t)
