(** Leftist min-heap, the priority queue behind the virtual-time event
    loop.  Keys are compared with the ordering supplied to [Make]. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type 'a t
  (** Heap of values prioritised by [Ord.t] keys.  Immutable. *)

  val empty : 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int
  val insert : Ord.t -> 'a -> 'a t -> 'a t

  val find_min : 'a t -> (Ord.t * 'a) option
  (** Smallest key, with insertion order breaking ties (stable). *)

  val delete_min : 'a t -> (Ord.t * 'a * 'a t) option
  val of_list : (Ord.t * 'a) list -> 'a t
  val to_sorted_list : 'a t -> (Ord.t * 'a) list
end
