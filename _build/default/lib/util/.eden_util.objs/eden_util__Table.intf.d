lib/util/table.mli:
