lib/util/heap.mli:
