lib/util/text.mli:
