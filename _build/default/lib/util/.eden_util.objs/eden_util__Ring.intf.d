lib/util/ring.mli:
