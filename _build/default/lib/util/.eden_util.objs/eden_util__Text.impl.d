lib/util/text.ml: Buffer List String
