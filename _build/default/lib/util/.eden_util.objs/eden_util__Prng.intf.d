lib/util/prng.mli:
