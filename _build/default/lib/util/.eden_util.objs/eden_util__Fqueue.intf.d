lib/util/fqueue.mli:
