(** Streaming statistics accumulator.

    Collects samples and reports count / mean / variance (Welford's
    online algorithm) plus exact percentiles from retained samples.
    Benchmarks use one of these per measured series. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.5] is the median (nearest-rank on retained samples).
    @raise Invalid_argument when empty or p outside [0,1]. *)

val merge : t -> t -> t
(** Combined statistics over both sample sets. *)

val pp : Format.formatter -> t -> unit
