type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length t.headers)
      rows
  in
  let render_row row =
    let cells = List.map2 (fun (w, a) c -> pad a w c) (List.combine widths t.aligns) row in
    String.concat "  " cells
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int = string_of_int
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_ratio x = Printf.sprintf "%.2fx" x
