(** Small text utilities shared by the filter library and the shell.

    Lines in the transput system are strings without the trailing
    newline; these helpers convert between the two representations and
    provide the handful of string operations the stdlib lacks. *)

val split_lines : string -> string list
(** Splits on ['\n'].  A trailing newline does not produce a final empty
    line; ["a\nb\n"] and ["a\nb"] both give [\["a"; "b"\]].  The empty
    string gives [\[\]]. *)

val join_lines : string list -> string
(** Joins with ['\n'] and appends a final newline when non-empty. *)

val is_prefix : prefix:string -> string -> bool
val is_suffix : suffix:string -> string -> bool
val contains_sub : sub:string -> string -> bool

val find_sub : sub:string -> string -> int option
(** Index of the first occurrence. *)

val replace_all : sub:string -> by:string -> string -> string
(** @raise Invalid_argument if [sub] is empty. *)

val pad_right : int -> string -> string
val pad_left : int -> string -> string

val chunks : size:int -> string -> string list
(** Splits a string into consecutive pieces of at most [size] bytes.
    @raise Invalid_argument if [size <= 0]. *)

val expand_tabs : tabstop:int -> string -> string
(** Replaces each tab with spaces up to the next multiple of [tabstop]. *)

val words : string -> string list
(** Maximal runs of non-whitespace. *)
