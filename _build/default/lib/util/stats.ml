type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations, Welford *)
  mutable minv : float;
  mutable maxv : float;
  mutable samples : float list; (* retained for percentiles *)
  mutable sorted : float array option; (* memoised sort *)
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity; samples = []; sorted = None }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.n
let total t = t.mean *. float_of_int t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)

let min_value t = if t.n = 0 then invalid_arg "Stats.min_value: empty" else t.minv
let max_value t = if t.n = 0 then invalid_arg "Stats.max_value: empty" else t.maxv

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
  let a = sorted t in
  let rank = int_of_float (ceil (p *. float_of_int t.n)) in
  let i = if rank <= 0 then 0 else min (rank - 1) (t.n - 1) in
  a.(i)

let merge a b =
  let t = create () in
  List.iter (add t) (List.rev_append a.samples b.samples);
  t

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f max=%.3f" t.n (mean t) (stddev t)
      t.minv (percentile t 0.5) t.maxv
