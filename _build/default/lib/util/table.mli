(** Plain-text aligned table rendering for benchmark and example output.

    The bench harness prints one [Table.t] per reproduced paper table or
    figure; keeping the renderer here avoids every binary reinventing
    column alignment. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A table with a caption and fixed column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Full rendering: title, rule, header, rule, rows. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string
(** e.g. [1.97x]. *)
