let split_lines s =
  let n = String.length s in
  if n = 0 then []
  else
    let rec go start acc =
      if start >= n then List.rev acc
      else
        match String.index_from_opt s start '\n' with
        | None -> List.rev (String.sub s start (n - start) :: acc)
        | Some i ->
            let line = String.sub s start (i - start) in
            if i = n - 1 then List.rev (line :: acc) else go (i + 1) (line :: acc)
    in
    go 0 []

let join_lines = function
  | [] -> ""
  | lines -> String.concat "\n" lines ^ "\n"

let is_prefix ~prefix s =
  let np = String.length prefix in
  String.length s >= np && String.sub s 0 np = prefix

let is_suffix ~suffix s =
  let ns = String.length suffix and n = String.length s in
  n >= ns && String.sub s (n - ns) ns = suffix

let find_sub ~sub s =
  let ns = String.length sub and n = String.length s in
  if ns = 0 then Some 0
  else
    let rec go i =
      if i + ns > n then None
      else if String.sub s i ns = sub then Some i
      else go (i + 1)
    in
    go 0

let contains_sub ~sub s = find_sub ~sub s <> None

let replace_all ~sub ~by s =
  if String.length sub = 0 then invalid_arg "Text.replace_all: empty sub";
  let buf = Buffer.create (String.length s) in
  let ns = String.length sub and n = String.length s in
  let rec go i =
    if i >= n then ()
    else if i + ns <= n && String.sub s i ns = sub then begin
      Buffer.add_string buf by;
      go (i + ns)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let pad_right width s =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let pad_left width s =
  if String.length s >= width then s else String.make (width - String.length s) ' ' ^ s

let chunks ~size s =
  if size <= 0 then invalid_arg "Text.chunks: size must be positive";
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min size (n - i) in
      go (i + len) (String.sub s i len :: acc)
  in
  if n = 0 then [] else go 0 []

let expand_tabs ~tabstop s =
  if tabstop <= 0 then invalid_arg "Text.expand_tabs: tabstop must be positive";
  let buf = Buffer.create (String.length s) in
  let col = ref 0 in
  String.iter
    (fun c ->
      if c = '\t' then begin
        let spaces = tabstop - (!col mod tabstop) in
        Buffer.add_string buf (String.make spaces ' ');
        col := !col + spaces
      end
      else begin
        Buffer.add_char buf c;
        incr col
      end)
    s;
  Buffer.contents buf

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let words s =
  let n = String.length s in
  let rec skip i = if i < n && is_space s.[i] then skip (i + 1) else i in
  let rec take i = if i < n && not (is_space s.[i]) then take (i + 1) else i in
  let rec go i acc =
    let i = skip i in
    if i >= n then List.rev acc
    else
      let j = take i in
      go j (String.sub s i (j - i) :: acc)
  in
  go 0 []
