(** Purely functional FIFO queue (Okasaki's two-list batched queue).

    Used where a queue must be captured in a checkpoint / passive
    representation: snapshots are free because the structure is
    immutable. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a -> 'a t -> 'a t
val pop : 'a t -> ('a * 'a t) option
val peek : 'a t -> 'a option
val of_list : 'a list -> 'a t
val to_list : 'a t -> 'a list
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
