lib/kernel/uid.mli: Format Hashtbl Map Set
