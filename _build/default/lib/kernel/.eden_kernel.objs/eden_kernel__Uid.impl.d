lib/kernel/uid.ml: Eden_util Format Hashtbl Int Int64 Map Printf Set
