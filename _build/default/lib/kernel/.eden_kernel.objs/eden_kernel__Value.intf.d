lib/kernel/value.mli: Format Uid
