lib/kernel/kernel.mli: Eden_net Eden_sched Format Uid Value
