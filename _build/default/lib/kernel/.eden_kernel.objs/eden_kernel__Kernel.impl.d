lib/kernel/kernel.ml: Eden_net Eden_sched Eden_util Format Hashtbl List Option Printf Result String Uid Value
