lib/kernel/value.ml: Float Format List Printf String Uid
