lib/shell/shell.mli: Eden_fs Eden_kernel Eden_transput
