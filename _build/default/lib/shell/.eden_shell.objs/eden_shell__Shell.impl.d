lib/shell/shell.ml: Buffer Eden_devices Eden_filters Eden_fs Eden_kernel Eden_sched Eden_transput Eden_util List Printf Result String
