(** Bounded blocking channel — intra-Eject IPC.

    This is the buffer that the paper's [Stdio] veneer shares between
    the filter's worker process (which [put]s via conventional [Write]
    calls) and the coordinator process that services Read invocations
    (which [get]s).  [put] blocks when full, [get] when empty. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val put : 'a t -> 'a -> unit
(** Blocks while full.  Fiber context only. *)

val try_put : 'a t -> 'a -> bool
val get : 'a t -> 'a
(** Blocks while empty.  Fiber context only. *)

val try_get : 'a t -> 'a option
val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool
