type 'a t = { ring : 'a Eden_util.Ring.t; readers : Waitq.t; writers : Waitq.t }

let create ~capacity =
  {
    ring = Eden_util.Ring.create ~capacity;
    readers = Waitq.create "chan.get";
    writers = Waitq.create "chan.put";
  }

let rec put t x =
  if Eden_util.Ring.push t.ring x then ignore (Waitq.wake_one t.readers)
  else begin
    Waitq.park t.writers;
    put t x
  end

let try_put t x =
  let ok = Eden_util.Ring.push t.ring x in
  if ok then ignore (Waitq.wake_one t.readers);
  ok

let rec get t =
  match Eden_util.Ring.pop t.ring with
  | Some x ->
      ignore (Waitq.wake_one t.writers);
      x
  | None ->
      Waitq.park t.readers;
      get t

let try_get t =
  match Eden_util.Ring.pop t.ring with
  | Some x ->
      ignore (Waitq.wake_one t.writers);
      Some x
  | None -> None

let length t = Eden_util.Ring.length t.ring
let capacity t = Eden_util.Ring.capacity t.ring
let is_empty t = Eden_util.Ring.is_empty t.ring
let is_full t = Eden_util.Ring.is_full t.ring
