(** CSP-style synchronous channels (§3 of the paper).

    "In these languages transput occurs when one process executes an
    output (!) operation and its correspondent executes an input (?)
    operation."  A rendezvous has no buffer at all: [send] blocks until
    a [recv] takes the value and vice versa — both sides are active and
    the runtime is the passive connection, one of the three readings §3
    offers for CSP's !/?.

    Used by tests to contrast rendezvous (both-active) with the paper's
    asymmetric disciplines (one-active). *)

type 'a t

val create : ?label:string -> unit -> 'a t

val send : 'a t -> 'a -> unit
(** Blocks until a receiver takes the value.  Fiber context only. *)

val recv : 'a t -> 'a
(** Blocks until a sender offers a value.  Fiber context only. *)

val try_send : 'a t -> 'a -> bool
(** Succeeds only if a receiver is already waiting. *)

val try_recv : 'a t -> 'a option
(** Succeeds only if a sender is already waiting. *)

val waiting_senders : 'a t -> int
val waiting_receivers : 'a t -> int
