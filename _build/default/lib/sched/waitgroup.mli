(** Barrier for "wait until these k tasks are done" patterns in tests
    and examples. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Registers that many outstanding tasks. *)

val finish : t -> unit
(** One task done.  @raise Failure if the count would go negative. *)

val wait : t -> unit
(** Blocks until the outstanding count is zero.  Fiber context only.
    Returns immediately when already zero. *)

val pending : t -> int
