type t = { mutable count : int; waiters : Waitq.t }

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative count";
  { count = n; waiters = Waitq.create "semaphore" }

let rec acquire t =
  if t.count > 0 then t.count <- t.count - 1
  else begin
    Waitq.park t.waiters;
    acquire t
  end

let try_acquire t =
  if t.count > 0 then begin
    t.count <- t.count - 1;
    true
  end
  else false

let release t =
  t.count <- t.count + 1;
  ignore (Waitq.wake_one t.waiters)

let available t = t.count
