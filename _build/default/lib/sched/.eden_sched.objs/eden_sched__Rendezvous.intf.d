lib/sched/rendezvous.mli:
