lib/sched/waitq.ml: Queue Sched
