lib/sched/sched.ml: Eden_util Effect Float Hashtbl List Printexc Printf Queue
