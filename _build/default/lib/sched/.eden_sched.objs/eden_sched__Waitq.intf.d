lib/sched/waitq.mli:
