lib/sched/rendezvous.ml: Queue Sched
