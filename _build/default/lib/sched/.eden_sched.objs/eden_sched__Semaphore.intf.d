lib/sched/semaphore.mli:
