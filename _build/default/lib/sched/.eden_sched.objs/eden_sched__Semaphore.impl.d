lib/sched/semaphore.ml: Waitq
