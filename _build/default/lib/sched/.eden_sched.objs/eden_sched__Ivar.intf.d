lib/sched/ivar.mli: Sched
