lib/sched/chan.ml: Eden_util Waitq
