lib/sched/waitgroup.mli:
