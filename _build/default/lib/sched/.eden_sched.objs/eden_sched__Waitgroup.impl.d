lib/sched/waitgroup.ml: Waitq
