lib/sched/chan.mli:
