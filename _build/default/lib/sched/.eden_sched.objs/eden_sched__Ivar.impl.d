lib/sched/ivar.ml: Sched Waitq
