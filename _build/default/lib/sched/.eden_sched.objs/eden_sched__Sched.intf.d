lib/sched/sched.mli:
