type t = { mutable count : int; waiters : Waitq.t }

let create () = { count = 0; waiters = Waitq.create "waitgroup" }

let add t n = t.count <- t.count + n

let finish t =
  if t.count <= 0 then failwith "Waitgroup.finish: no outstanding tasks";
  t.count <- t.count - 1;
  if t.count = 0 then ignore (Waitq.wake_all t.waiters)

let rec wait t =
  if t.count > 0 then begin
    Waitq.park t.waiters;
    wait t
  end

let pending t = t.count
