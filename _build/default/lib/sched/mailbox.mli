(** Unbounded FIFO mailbox with blocking receive.

    The coordinator process of every Eject drains one of these; the
    kernel posts incoming invocation messages into it from any
    context. *)

type 'a t

val create : ?label:string -> unit -> 'a t
val send : 'a t -> 'a -> unit
(** Never blocks; safe from any context. *)

val receive : 'a t -> 'a
(** Blocks until a message is available.  Fiber context only. *)

val receive_timeout : Sched.t -> 'a t -> float -> 'a option
(** [None] if no message arrives within the virtual-time delay. *)

val try_receive : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
