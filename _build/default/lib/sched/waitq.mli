(** Park/wake queue — the primitive under every higher-level
    synchronisation structure.

    A fiber [park]s itself on the queue; any context may later [wake_one]
    or [wake_all].  Wakes are FIFO.  A resume left behind by a cancelled
    fiber is harmless (resumes are idempotent). *)

type t

val create : string -> t
(** The string names the queue in blocked-fiber listings. *)

val park : t -> unit
(** Suspend the current fiber until woken.  Fiber context only. *)

val park_external : t -> (unit -> unit) -> unit
(** Registers an externally-created resume closure (from
    {!Sched.suspend}) without suspending; used to race a queue against a
    timer. *)

val wake_one : t -> bool
(** Wakes the longest-parked fiber; [false] if none was parked. *)

val wake_all : t -> int
(** Wakes everyone; returns how many resumes were issued. *)

val waiters : t -> int
