type t = { label : string; q : (unit -> unit) Queue.t }

let create label = { label; q = Queue.create () }

let park t = Sched.suspend ~reason:t.label (fun resume -> Queue.push resume t.q)

let park_external t resume = Queue.push resume t.q

let wake_one t =
  match Queue.take_opt t.q with
  | None -> false
  | Some resume ->
      resume ();
      true

let wake_all t =
  let n = Queue.length t.q in
  Queue.iter (fun resume -> resume ()) t.q;
  Queue.clear t.q;
  n

let waiters t = Queue.length t.q
