(** Counting semaphore over fibers. *)

type t

val create : int -> t
(** @raise Invalid_argument on a negative initial count. *)

val acquire : t -> unit
(** Blocks while the count is zero.  Fiber context only. *)

val try_acquire : t -> bool
val release : t -> unit
val available : t -> int
