(* Offers are kept in FIFO queues; each is claimed exactly once via its
   [taken] flag, so a cancelled fiber's stale offer is skipped rather
   than matched. *)

(* A sender's entry holds [Some v] in its cell; a receiver's entry holds
   an empty cell the sender fills.  The wake closure resumes the parked
   party. *)
type 'a t = {
  label : string;
  senders : ('a option ref * (unit -> unit)) Queue.t; (* value cell (filled), wake *)
  receivers : ('a option ref * (unit -> unit)) Queue.t; (* empty cell to fill, wake *)
}

let create ?(label = "rendezvous") () =
  { label; senders = Queue.create (); receivers = Queue.create () }

(* Pop the next live entry: cells whose option was consumed (senders) or
   already filled (receivers) by a racing partner are skipped. *)
let rec pop_live q ~live =
  match Queue.take_opt q with
  | None -> None
  | Some ((cell, _) as entry) -> if live cell then Some entry else pop_live q ~live

let send t v =
  match pop_live t.receivers ~live:(fun cell -> !cell = None) with
  | Some (cell, wake) ->
      cell := Some v;
      wake ()
  | None ->
      let cell = ref (Some v) in
      Sched.suspend ~reason:(t.label ^ " send") (fun resume ->
          Queue.push (cell, resume) t.senders)
      (* Woken when a receiver drains [cell]. *)

let recv t =
  match pop_live t.senders ~live:(fun cell -> !cell <> None) with
  | Some (cell, wake) -> (
      match !cell with
      | Some v ->
          cell := None;
          wake ();
          v
      | None -> assert false)
  | None ->
      let cell = ref None in
      Sched.suspend ~reason:(t.label ^ " recv") (fun resume ->
          Queue.push (cell, resume) t.receivers);
      (match !cell with
      | Some v ->
          cell := None;
          v
      | None ->
          (* Spurious wake (e.g. the matching sender was cancelled):
             treat as a failed rendezvous. *)
          failwith "Rendezvous.recv: woken without a value")

let try_send t v =
  match pop_live t.receivers ~live:(fun cell -> !cell = None) with
  | Some (cell, wake) ->
      cell := Some v;
      wake ();
      true
  | None -> false

let try_recv t =
  match pop_live t.senders ~live:(fun cell -> !cell <> None) with
  | Some (cell, wake) ->
      let v = !cell in
      cell := None;
      wake ();
      v
  | None -> None

let count_live q ~live = Queue.fold (fun n (cell, _) -> if live cell then n + 1 else n) 0 q

let waiting_senders t = count_live t.senders ~live:(fun c -> !c <> None)
let waiting_receivers t = count_live t.receivers ~live:(fun c -> !c = None)
