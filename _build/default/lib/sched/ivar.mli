(** Write-once variable ("incremental variable").

    The reply slot of every invocation is an [Ivar]: the invoker blocks
    in [read] until the invokee [fill]s it. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** @raise Failure if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** [false] if already filled. *)

val read : 'a t -> 'a
(** Blocks until filled.  Fiber context only. *)

val read_timeout : Sched.t -> 'a t -> float -> 'a option
(** Blocks until filled or until the virtual-time delay elapses; [None]
    on timeout.  Needs the scheduler handle to arm the timer. *)

val peek : 'a t -> 'a option
val is_filled : 'a t -> bool
