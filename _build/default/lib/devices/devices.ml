module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module Ivar = Eden_sched.Ivar
module Sched = Eden_sched.Sched
module T = Eden_transput

type display = { uid : Uid.t; lines : unit -> string list; done_ : unit Ivar.t }

(* Rendered output lives outside the behaviour so it survives
   deactivation and crash — it models ink on paper / phosphor. *)
let fresh_screen () =
  let buf = ref [] in
  let render line = buf := line :: !buf in
  let lines () = List.rev !buf in
  (render, lines)

let terminal_ro k ?node ?(name = "terminal") ?(rate = 0.0) ?(batch = 1) ~upstream
    ?(channel = T.Channel.output) () =
  let render, lines = fresh_screen () in
  let done_ = Ivar.create () in
  let uid =
    T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
        let pull = T.Pull.connect ctx ~batch ~channel upstream in
        Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
            T.Pull.iter
              (fun v ->
                if rate > 0.0 then Sched.sleep rate;
                render (Value.to_str v))
              pull;
            Ivar.fill done_ ());
        [])
  in
  { uid; lines; done_ }

let terminal_wo k ?node ?(name = "terminal") ?(rate = 0.0) ?(capacity = 1) () =
  let render, lines = fresh_screen () in
  let done_ = Ivar.create () in
  let uid =
    T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
        let intake = T.Intake.create () in
        let r = T.Intake.add_channel intake ~capacity T.Channel.output in
        Kernel.spawn_worker ctx ~name:(name ^ "/render") (fun () ->
            let rec go () =
              match T.Intake.read r with
              | Some v ->
                  if rate > 0.0 then Sched.sleep rate;
                  render (Value.to_str v);
                  go ()
              | None -> Ivar.fill done_ ()
            in
            go ());
        T.Intake.handlers intake)
  in
  { uid; lines; done_ }

let null_sink_ro k ?node ?(name = "null-sink") ?(batch = 1) ~upstream
    ?(channel = T.Channel.output) () =
  let done_ = Ivar.create () in
  let uid =
    T.Stage.sink_ro k ?node ~name ~batch ~upstream ~upstream_channel:channel
      ~on_done:(fun () -> Ivar.fill done_ ())
      ignore
  in
  { uid; lines = (fun () -> []); done_ }

let date_source k ?node ?(name = "date-source") () =
  T.Stage.source_ro k ?node ~name (fun () ->
      Some (Value.Str (Printf.sprintf "virtual time %.3f" (Sched.time ()))))

let counter_source k ?node ?(name = "counter-source") ?(prefix = "line ") ~limit () =
  let n = ref 0 in
  T.Stage.source_ro k ?node ~name (fun () ->
      if !n >= limit then None
      else begin
        incr n;
        Some (Value.Str (Printf.sprintf "%s%d" prefix !n))
      end)

let text_source k ?node ?(name = "text-source") ?(capacity = 0) lines =
  let rest = ref lines in
  T.Stage.source_ro k ?node ~name ~capacity (fun () ->
      match !rest with
      | [] -> None
      | l :: tl ->
          rest := tl;
          Some (Value.Str l))

let random_source k ?node ?(name = "random-source") ?(seed = 0xC0FFEEL) ?(words_per_line = 4)
    ~limit () =
  let prng = Eden_util.Prng.create seed in
  let vocabulary =
    [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot"; "golf"; "hotel" |]
  in
  let n = ref 0 in
  T.Stage.source_ro k ?node ~name (fun () ->
      if !n >= limit then None
      else begin
        incr n;
        let words = List.init words_per_line (fun _ -> Eden_util.Prng.choose prng vocabulary) in
        Some (Value.Str (String.concat " " words))
      end)

(* --- Printer -------------------------------------------------------- *)

type printer = { puid : Uid.t; paper : unit -> string list; jobs_completed : unit -> int }

let op_print = "Print"

let printer k ?node ?(name = "printer") ?(rate = 0.0) () =
  let render, lines = fresh_screen () in
  let jobs = ref 0 in
  let uid =
    T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
        (* One sheet of paper: concurrent Print invocations queue on the
           spool semaphore rather than interleave their lines. *)
        let spool = Eden_sched.Semaphore.create 1 in
        [
          ( op_print,
            fun arg ->
              let source, channel =
                match arg with
                | Value.Uid u -> (u, T.Channel.output)
                | v ->
                    let u, c = Value.to_pair v in
                    (Value.to_uid u, T.Channel.of_value c)
              in
              Eden_sched.Semaphore.acquire spool;
              let finish () = Eden_sched.Semaphore.release spool in
              (try
                 let pull = T.Pull.connect ctx ~channel source in
                 T.Pull.iter
                   (fun v ->
                     if rate > 0.0 then Sched.sleep rate;
                     render (Value.to_str v))
                   pull
               with e ->
                 finish ();
                 raise e);
              incr jobs;
              finish ();
              Value.Unit );
        ])
  in
  { puid = uid; paper = lines; jobs_completed = (fun () -> !jobs) }

let print ctx ~printer ?channel source =
  let arg =
    match channel with
    | None -> Value.Uid source
    | Some c -> Value.pair (Value.Uid source) (T.Channel.to_value c)
  in
  Value.to_unit (Kernel.call ctx printer ~op:op_print arg)

(* --- Report windows -------------------------------------------------- *)

let report_window_wo k ?node ?(name = "report-window") ~writers () =
  let render, lines = fresh_screen () in
  let done_ = Ivar.create () in
  let uid =
    T.Stage.custom k ?node ~name (fun _ctx ~passive:_ ->
        (* Hand-rolled Deposit handler rather than an Intake: a window
           shared by several reporters must survive [writers] separate
           end-of-stream marks, where an Intake channel closes on the
           first. *)
        let remaining = ref writers in
        [
          ( T.Proto.deposit_op,
            fun arg ->
              let chan, eos, items = T.Proto.parse_deposit_request arg in
              if not (T.Channel.equal chan T.Channel.report) then
                raise (Kernel.Eden_error ("no such channel: " ^ T.Channel.to_string chan));
              if !remaining <= 0 then raise (Kernel.Eden_error "window already closed");
              List.iter (fun v -> render (Value.to_str v)) items;
              if eos then begin
                decr remaining;
                if !remaining = 0 then Ivar.fill done_ ()
              end;
              Value.Unit );
        ])
  in
  { uid; lines; done_ }

let report_window_ro k ?node ?(name = "report-window") ?(batch = 1) ~watch () =
  let render, lines = fresh_screen () in
  let done_ = Ivar.create () in
  let uid =
    T.Stage.custom k ?node ~name (fun ctx ~passive:_ ->
        let wg = Eden_sched.Waitgroup.create () in
        Eden_sched.Waitgroup.add wg (List.length watch);
        List.iter
          (fun (label, source, channel) ->
            Kernel.spawn_worker ctx ~name:(name ^ "/watch:" ^ label) (fun () ->
                let pull = T.Pull.connect ctx ~batch ~channel source in
                T.Pull.iter (fun v -> render (label ^ " | " ^ Value.to_str v)) pull;
                Eden_sched.Waitgroup.finish wg))
          watch;
        Kernel.spawn_worker ctx ~name:(name ^ "/join") (fun () ->
            Eden_sched.Waitgroup.wait wg;
            Ivar.fill done_ ());
        [])
  in
  { uid; lines; done_ }
