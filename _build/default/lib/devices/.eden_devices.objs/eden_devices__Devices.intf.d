lib/devices/devices.mli: Eden_kernel Eden_net Eden_sched Eden_transput
