lib/devices/devices.ml: Eden_kernel Eden_sched Eden_transput Eden_util List Printf String
