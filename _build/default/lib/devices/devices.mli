(** Device Ejects.

    §4: "Output devices such as terminals and printers would provide a
    potentially infinite supply of Read invocations.  Connecting a
    terminal to a filter Eject would be rather like starting a pump."
    Devices here follow that model: display devices are pumping sinks
    (with a configurable consumption rate, so device speed paces the
    whole pipeline); the date source and counter source are passive
    producers; the printer server is asked to {e read from} whatever it
    should print.

    Handles bundle the Eject's UID with accessors for what the device
    has rendered — the accessors are simulation-side instrumentation,
    not operations other Ejects can invoke. *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value
module T = Eden_transput

type display = {
  uid : Uid.t;
  lines : unit -> string list;  (** What has been rendered so far. *)
  done_ : unit Eden_sched.Ivar.t;  (** Filled at end of stream. *)
}

(** {1 Sinks} *)

val terminal_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?rate:float ->
  ?batch:int ->
  upstream:Uid.t ->
  ?channel:T.Channel.t ->
  unit ->
  display
(** A pumping terminal: actively reads [upstream], rendering one line
    per [rate] (default 0, i.e. infinitely fast) of virtual time.  Start
    with {!Kernel.poke}. *)

val terminal_wo :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?rate:float ->
  ?capacity:int ->
  unit ->
  display
(** A passive terminal for write-only pipelines: renders what is
    deposited on {!T.Channel.output}. *)

val null_sink_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  upstream:Uid.t ->
  ?channel:T.Channel.t ->
  unit ->
  display
(** "The null sink is an Eject which reads indiscriminately and ignores
    the data it is given" (§4).  [lines] stays empty; [done_] still
    fires. *)

(** {1 Sources} *)

val date_source : Kernel.t -> ?node:Eden_net.Net.node_id -> ?name:string -> unit -> Uid.t
(** "An Eject which responds to a read invocation by returning the
    current date and time is a source" (§4).  Infinite; each item is a
    [Value.Str] timestamp in virtual time. *)

val counter_source :
  Kernel.t -> ?node:Eden_net.Net.node_id -> ?name:string -> ?prefix:string -> limit:int -> unit -> Uid.t
(** Lines ["<prefix>1" .. "<prefix>limit"], then end of stream. *)

val random_source :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?seed:int64 ->
  ?words_per_line:int ->
  limit:int ->
  unit ->
  Uid.t
(** Deterministic pseudo-random text, [limit] lines — workload filler
    for benches and tests.  Same seed, same text. *)

val text_source :
  Kernel.t -> ?node:Eden_net.Net.node_id -> ?name:string -> ?capacity:int -> string list -> Uid.t
(** A fixed document, one line per item. *)

(** {1 Printer server} *)

type printer = {
  puid : Uid.t;
  paper : unit -> string list;  (** Everything printed, in order. *)
  jobs_completed : unit -> int;
}

val printer : Kernel.t -> ?node:Eden_net.Net.node_id -> ?name:string -> ?rate:float -> unit -> printer
(** Responds to [Print(source_uid)] (or [Print(pair source channel)]):
    reads the named stream to exhaustion onto paper, then replies — "a
    file could be printed simply by requesting the printer server to
    read from the file" (§4).  Concurrent [Print]s are serialised, like
    a spool. *)

val op_print : string

val print : Kernel.ctx -> printer:Uid.t -> ?channel:T.Channel.t -> Uid.t -> unit
(** Client convenience: blocks until the job is on paper. *)

(** {1 Report windows} *)

val report_window_wo :
  Kernel.t -> ?node:Eden_net.Net.node_id -> ?name:string -> writers:int -> unit -> display
(** Figure 3's window: a passive fan-in sink on {!T.Channel.report}.
    Accepts deposits from any number of senders; [done_] fires after
    [writers] end-of-stream marks. *)

val report_window_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  watch:(string * Uid.t * T.Channel.t) list ->
  unit ->
  display
(** Figure 4's window: actively reads each watched [(label, uid,
    channel)] report stream, rendering ["label | line"].  Start with
    {!Kernel.poke}; [done_] fires when every watched stream has ended. *)
