module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

let tee k ?node ?(name = "tee") ?(capacity = 0) ?(batch = 1) ~upstream
    ?(upstream_channel = Channel.output) ~channels () =
  if channels = [] then invalid_arg "Flow.tee: no output channels";
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name
    (fun ctx ~passive:_ ->
      let port = Port.create () in
      let writers = List.map (fun c -> Port.add_channel port ~capacity c) channels in
      let pull = Pull.connect ctx ~batch ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/copy") (fun () ->
          let rec go () =
            match Pull.read pull with
            | Some v ->
                List.iter (fun w -> Port.write w v) writers;
                go ()
            | None -> List.iter Port.close writers
          in
          go ());
      Port.handlers port)

type merge_policy = Arrival | Round_robin

let merge k ?node ?(name = "merge") ?(capacity = 0) ?(batch = 1) ?(policy = Arrival) ~upstreams
    () =
  if upstreams = [] then invalid_arg "Flow.merge: no upstreams";
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name
    (fun ctx ~passive:_ ->
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      (match policy with
      | Round_robin ->
          (* One worker cycles through live sources, pulling one item
             from each in turn. *)
          Kernel.spawn_worker ctx ~name:(name ^ "/rr") (fun () ->
              let pulls =
                List.map (fun (u, c) -> Pull.connect ctx ~batch ~channel:c u) upstreams
              in
              let rec cycle live =
                if live <> [] then begin
                  let still =
                    List.filter
                      (fun pull ->
                        match Pull.read pull with
                        | Some v ->
                            Port.write w v;
                            true
                        | None -> false)
                      live
                  in
                  cycle still
                end
              in
              cycle pulls;
              Port.close w)
      | Arrival ->
          (* One worker per source, racing into the shared channel; a
             waitgroup worker closes after the last ends. *)
          let wg = Eden_sched.Waitgroup.create () in
          Eden_sched.Waitgroup.add wg (List.length upstreams);
          List.iteri
            (fun i (u, c) ->
              Kernel.spawn_worker ctx ~name:(Printf.sprintf "%s/in%d" name i) (fun () ->
                  let pull = Pull.connect ctx ~batch ~channel:c u in
                  Pull.iter (Port.write w) pull;
                  Eden_sched.Waitgroup.finish wg))
            upstreams;
          Kernel.spawn_worker ctx ~name:(name ^ "/join") (fun () ->
              Eden_sched.Waitgroup.wait wg;
              Port.close w));
      Port.handlers port)

let split k ?node ?(name = "split") ?(capacity = 0) ?(batch = 1) ~upstream
    ?(upstream_channel = Channel.output) ~pred ~accept ~reject () =
  if Channel.equal accept reject then invalid_arg "Flow.split: channels must differ";
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name
    (fun ctx ~passive:_ ->
      let port = Port.create () in
      let wa = Port.add_channel port ~capacity accept in
      let wr = Port.add_channel port ~capacity reject in
      let pull = Pull.connect ctx ~batch ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/route") (fun () ->
          let rec go () =
            match Pull.read pull with
            | Some v ->
                Port.write (if pred v then wa else wr) v;
                go ()
            | None ->
                Port.close wa;
                Port.close wr
          in
          go ());
      Port.handlers port)

let zip k ?node ?(name = "zip") ?(capacity = 0) ?(batch = 1) ~left ~right () =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name
    (fun ctx ~passive:_ ->
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      let lu, lc = left and ru, rc = right in
      let pl = Pull.connect ctx ~batch ~channel:lc lu in
      let pr = Pull.connect ctx ~batch ~channel:rc ru in
      Kernel.spawn_worker ctx ~name:(name ^ "/pair") (fun () ->
          let rec go () =
            match Pull.read pl with
            | None -> Port.close w
            | Some l -> (
                match Pull.read pr with
                | None -> Port.close w
                | Some r ->
                    Port.write w (Value.pair l r);
                    go ())
          in
          go ());
      Port.handlers port)
