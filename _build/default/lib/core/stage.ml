module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

type gen = unit -> Value.t option
type consume = Value.t -> unit

let custom k ?node ?(dispatch = Kernel.Concurrent) ~name behaviour =
  Kernel.create_eject k ?node ~dispatch ~type_name:name behaviour

(* --- Read-only ------------------------------------------------------ *)

let source_ro k ?node ?(name = "source") ?(capacity = 0) gen =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/produce") (fun () ->
          (* Wait for room before generating, so production never runs
             beyond the declared anticipation. *)
          let rec go () =
            Port.await_writable w;
            match gen () with
            | Some v ->
                Port.write w v;
                go ()
            | None -> Port.close w
          in
          go ());
      Port.handlers port)

let filter_ro k ?node ?(name = "filter") ?(capacity = 0) ?(batch = 1) ~upstream
    ?(upstream_channel = Channel.output) transform =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      let pull = Pull.connect ctx ~batch ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          if capacity = 0 then Port.await_demand w;
          transform (fun () -> Pull.read pull) (Port.write w);
          Port.close w);
      Port.handlers port)

let sink_ro k ?node ?(name = "sink") ?(batch = 1) ~upstream ?(upstream_channel = Channel.output)
    ?(on_done = fun () -> ()) consume =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let pull = Pull.connect ctx ~batch ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          Pull.iter consume pull;
          on_done ());
      [])

(* --- Write-only ----------------------------------------------------- *)

let source_wo k ?node ?(name = "source") ?(batch = 1) ~downstream
    ?(downstream_channel = Channel.output) gen =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let push = Push.connect ctx ~batch ~channel:downstream_channel downstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          let rec go () =
            match gen () with
            | Some v ->
                Push.write push v;
                go ()
            | None -> Push.close push
          in
          go ());
      [])

let filter_wo k ?node ?(name = "filter") ?(capacity = 1) ?(batch = 1) ~downstream
    ?(downstream_channel = Channel.output) transform =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let intake = Intake.create () in
      let r = Intake.add_channel intake ~capacity Channel.output in
      let push = Push.connect ctx ~batch ~channel:downstream_channel downstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/transform") (fun () ->
          transform (fun () -> Intake.read r) (Push.write push);
          Push.close push);
      Intake.handlers intake)

let sink_wo k ?node ?(name = "sink") ?(capacity = 1) ?(on_done = fun () -> ()) consume =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let intake = Intake.create () in
      let r = Intake.add_channel intake ~capacity Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/consume") (fun () ->
          let rec go () =
            match Intake.read r with
            | Some v ->
                consume v;
                go ()
            | None -> on_done ()
          in
          go ());
      Intake.handlers intake)

(* --- Conventional --------------------------------------------------- *)

let pipe k ?node ?(name = "pipe") ?(capacity = 4) () =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let intake = Intake.create () in
      let r = Intake.add_channel intake ~capacity Channel.output in
      let port = Port.create () in
      let w = Port.add_channel port ~capacity:0 Channel.output in
      (* The internal copy from intake to port costs no invocations; the
         pipe is one Eject with one buffer, observed from both sides. *)
      Kernel.spawn_worker ctx ~name:(name ^ "/buffer") (fun () ->
          let rec go () =
            match Intake.read r with
            | Some v ->
                Port.write w v;
                go ()
            | None -> Port.close w
          in
          go ());
      Intake.handlers intake @ Port.handlers port)

let source_active k ?node ?(name = "source") ?batch ~downstream gen =
  source_wo k ?node ~name ?batch ~downstream gen

let filter_active k ?node ?(name = "filter") ?(batch = 1) ~upstream ~downstream transform =
  custom k ?node ~name (fun ctx ~passive:_ ->
      let pull = Pull.connect ctx ~batch upstream in
      let push = Push.connect ctx ~batch downstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/pump") (fun () ->
          transform (fun () -> Pull.read pull) (Push.write push);
          Push.close push);
      [])

let sink_active k ?node ?name ?batch ~upstream ?on_done consume =
  sink_ro k ?node ?name ?batch ~upstream ?on_done consume
