lib/core/transform.ml: Eden_kernel List
