lib/core/flow.mli: Channel Eden_kernel Eden_net
