lib/core/channel.mli: Eden_kernel Format
