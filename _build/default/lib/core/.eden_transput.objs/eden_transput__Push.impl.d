lib/core/push.ml: Channel Eden_kernel List Proto
