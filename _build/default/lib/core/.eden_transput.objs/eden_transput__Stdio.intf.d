lib/core/stdio.mli: Channel Eden_kernel Eden_net Port Pull
