lib/core/transform.mli: Eden_kernel
