lib/core/intake.mli: Channel Eden_kernel
