lib/core/stage.mli: Channel Eden_kernel Eden_net Transform
