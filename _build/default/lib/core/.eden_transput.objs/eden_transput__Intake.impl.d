lib/core/intake.ml: Channel Eden_kernel Eden_sched List Proto Queue
