lib/core/proto.mli: Channel Eden_kernel
