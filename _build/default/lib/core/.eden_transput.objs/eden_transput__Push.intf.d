lib/core/push.mli: Channel Eden_kernel
