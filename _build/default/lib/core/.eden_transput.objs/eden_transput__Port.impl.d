lib/core/port.ml: Channel Eden_kernel Eden_sched List Proto Queue
