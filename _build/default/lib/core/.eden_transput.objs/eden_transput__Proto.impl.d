lib/core/proto.ml: Channel Eden_kernel
