lib/core/stage.ml: Channel Eden_kernel Intake Port Pull Push
