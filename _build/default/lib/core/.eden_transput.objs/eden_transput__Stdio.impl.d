lib/core/stdio.ml: Buffer Channel Eden_kernel Port Printf Pull String
