lib/core/port.mli: Channel Eden_kernel
