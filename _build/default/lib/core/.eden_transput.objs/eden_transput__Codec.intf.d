lib/core/codec.mli: Eden_kernel Pull Push Transform
