lib/core/pull.ml: Channel Eden_kernel Proto
