lib/core/flow.ml: Channel Eden_kernel Eden_sched List Port Printf Pull
