lib/core/pull.mli: Channel Eden_kernel
