lib/core/pipeline.ml: Array Eden_kernel Eden_sched List Printf Stage
