lib/core/pipeline.mli: Eden_kernel Eden_net Eden_sched Stage Transform
