lib/core/codec.ml: Eden_kernel List Option Pull Push Transform
