lib/core/redirect.mli: Channel Eden_kernel Eden_net
