lib/core/channel.ml: Eden_kernel Format Int
