lib/core/redirect.ml: Channel Eden_kernel Port Pull
