(** Dynamic stream redirection.

    The paper's conclusion: "Redirection of input and output can be
    provided very naturally in a system where each entity is referred to
    by means of a unique identifier.  Special file or stream descriptors
    are not needed."

    A redirector is an ordinary stream source whose {e actual} upstream
    can be switched at any moment by a [SetSource] invocation.  Its
    consumers notice nothing: they keep naming the same UID and channel.
    Because it proxies, it adds one invocation per Transfer — the cost
    of the indirection, measured in the tests.

    Semantics at switch time: items already obtained from the old
    upstream are delivered first; the first Transfer {e after} the
    switch pulls from the new upstream.  An upstream's end of stream is
    passed through only when no redirection has been requested; a
    redirector with a pending switch survives its old upstream's end. *)

module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value

val create :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?batch:int ->
  initial:Uid.t * Channel.t ->
  unit ->
  Uid.t
(** Serves {!Channel.output} by proxying the current upstream; accepts
    [SetSource]. *)

val op_set_source : string

val set_source : Kernel.ctx -> redirector:Uid.t -> ?channel:Channel.t -> Uid.t -> unit
(** Client convenience for [SetSource]. *)
