module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Waitq = Eden_sched.Waitq

type chan_state = {
  chan : Channel.t;
  items : Value.t Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable demand : int; (* outstanding, unserved Transfer credit *)
  readers : Waitq.t; (* parked Transfer handlers *)
  writers : Waitq.t; (* parked [write] callers *)
}

type t = { channels : (Channel.t * chan_state) list ref }

type writer = chan_state

let create () = { channels = ref [] }

let add_channel t ?(capacity = 0) chan =
  if capacity < 0 then invalid_arg "Port.add_channel: negative capacity";
  if List.exists (fun (c, _) -> Channel.equal c chan) !(t.channels) then
    invalid_arg ("Port.add_channel: duplicate channel " ^ Channel.to_string chan);
  let s =
    {
      chan;
      items = Queue.create ();
      capacity;
      closed = false;
      demand = 0;
      readers = Waitq.create ("port " ^ Channel.to_string chan ^ " readers");
      writers = Waitq.create ("port " ^ Channel.to_string chan ^ " writers");
    }
  in
  t.channels := (chan, s) :: !(t.channels);
  s

let find t chan = List.find_opt (fun (c, _) -> Channel.equal c chan) !(t.channels)

let writer t chan = match find t chan with Some (_, s) -> s | None -> raise Not_found

let rec write s item =
  if s.closed then failwith "Port.write: channel closed";
  if Queue.length s.items < s.capacity + s.demand then begin
    Queue.push item s.items;
    ignore (Waitq.wake_one s.readers)
  end
  else begin
    Waitq.park s.writers;
    write s item
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    ignore (Waitq.wake_all s.readers)
  end

let rec await_demand s =
  if s.demand = 0 && not s.closed then begin
    Waitq.park s.writers;
    await_demand s
  end

let rec await_writable s =
  if (not s.closed) && Queue.length s.items >= s.capacity + s.demand then begin
    Waitq.park s.writers;
    await_writable s
  end

let is_closed s = s.closed
let buffered s = Queue.length s.items

(* Serve one Transfer request.  Runs as an invocation handler inside a
   worker fiber, so parking here blocks only this request. *)
let serve_transfer t arg =
  let chan, credit = Proto.parse_transfer_request arg in
  match find t chan with
  | None -> raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan))
  | Some (_, s) ->
      s.demand <- s.demand + credit;
      (* New demand may unblock a lazy writer. *)
      ignore (Waitq.wake_all s.writers);
      let rec await () =
        if Queue.is_empty s.items && not s.closed then begin
          Waitq.park s.readers;
          await ()
        end
      in
      await ();
      let rec take n acc =
        if n = 0 then List.rev acc
        else
          match Queue.take_opt s.items with
          | None -> List.rev acc
          | Some x -> take (n - 1) (x :: acc)
      in
      let items = take credit [] in
      s.demand <- max 0 (s.demand - credit);
      (* Space freed (and demand gone): let the writer reassess. *)
      ignore (Waitq.wake_all s.writers);
      let eos = s.closed && Queue.is_empty s.items in
      Proto.transfer_reply { Proto.eos; items }

let handlers t = [ (Proto.transfer_op, serve_transfer t) ]
