module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value

type t = Num of int | Cap of Uid.t

let output = Num 0
let report = Num 1

let equal a b =
  match a, b with
  | Num x, Num y -> x = y
  | Cap x, Cap y -> Uid.equal x y
  | (Num _ | Cap _), _ -> false

let compare a b =
  match a, b with
  | Num x, Num y -> Int.compare x y
  | Cap x, Cap y -> Uid.compare x y
  | Num _, Cap _ -> -1
  | Cap _, Num _ -> 1

let pp ppf = function
  | Num n -> Format.fprintf ppf "ch:%d" n
  | Cap u -> Format.fprintf ppf "ch:%s" (Uid.to_string u)

let to_string c = Format.asprintf "%a" pp c

let to_value = function Num n -> Value.Int n | Cap u -> Value.Uid u

let of_value = function
  | Value.Int n -> Num n
  | Value.Uid u -> Cap u
  | v -> raise (Value.Protocol_error ("not a channel identifier: " ^ Value.to_string v))
