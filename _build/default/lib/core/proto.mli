(** The asymmetric stream wire protocol.

    Two operations are enough for all three disciplines:

    - [Transfer] (active input ⇄ passive output): the consumer invokes
      [Transfer(channel, credit)] on the producer, which replies
      [(eos, items)] with [1 ≤ length items ≤ credit] unless the stream
      has ended.  This is the only operation the "read only" discipline
      needs, and is the operation of the paper's bootstrap system (§7).
    - [Deposit] (active output ⇄ passive input): the producer invokes
      [Deposit(channel, eos, items)] on the consumer; the reply (unit)
      doubles as the flow-control acknowledgement.

    A conventional Unix-style pipe supports both: [Deposit] fills it and
    [Transfer] drains it. *)

module Value = Eden_kernel.Value

val transfer_op : string
val deposit_op : string

(** {1 Transfer} *)

val transfer_request : Channel.t -> credit:int -> Value.t

val parse_transfer_request : Value.t -> Channel.t * int
(** @raise Value.Protocol_error on malformed requests, including
    non-positive credit. *)

type transfer_reply = { eos : bool; items : Value.t list }

val transfer_reply : transfer_reply -> Value.t
val parse_transfer_reply : Value.t -> transfer_reply

(** {1 Deposit} *)

val deposit_request : Channel.t -> eos:bool -> Value.t list -> Value.t
val parse_deposit_request : Value.t -> Channel.t * bool * Value.t list
