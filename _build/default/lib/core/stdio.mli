(** The "standard IO module" of §4.

    "It is possible to adopt a more conventional style of programming
    by adding an extra process to the filter.  The standard IO module
    obtained from a library would implement the usual Write operations
    that put characters into a buffer.  However, that buffer would be
    shared with a process that receives invocations which request data
    and services them.  The filter process itself would be programmed in
    the conventional way and make use of the Write operations whenever
    necessary."

    [out_stream] is that veneer: character-oriented [output_string] /
    [print_line] calls accumulate in a line buffer and flush as stream
    items into a {!Port} writer, whose Transfer handler is the "process
    that services requests".  [in_stream] is the mirror image over a
    {!Pull}.  {!filter_ro} packages the whole §4 arrangement: write an
    ordinary [while read/print] program and get a read-only filter
    Eject. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

(** {1 Output} *)

type out_stream

val attach_out : Port.writer -> out_stream

val output_char : out_stream -> char -> unit
(** Buffered; a ['\n'] completes the current line and emits it as one
    stream item (blocking on flow control like any {!Port.write}). *)

val output_string : out_stream -> string -> unit
val print_line : out_stream -> string -> unit
(** [output_string] plus the terminating newline. *)

val printf : out_stream -> ('a, unit, string, unit) format4 -> 'a

val close_out : out_stream -> unit
(** Emits any unterminated partial line, then closes the channel.
    Idempotent. *)

(** {1 Input} *)

type in_stream

val attach_in : Pull.t -> in_stream

val input_line : in_stream -> string option
(** Next line; [None] at end of stream. *)

val input_char : in_stream -> char option
(** Character-at-a-time view of the same stream; the newline between
    items is materialised as ['\n']. *)

val iter_lines : (string -> unit) -> in_stream -> unit

(** {1 The conventional filter} *)

val filter_ro :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  upstream:Uid.t ->
  ?upstream_channel:Channel.t ->
  (in_stream -> out_stream -> unit) ->
  Uid.t
(** A read-only filter Eject whose body is written against conventional
    [input_line]/[print_line] operations; the asymmetric protocol is
    entirely hidden in this module, which is the paper's point about
    where the burden moves. *)
