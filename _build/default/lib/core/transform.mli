(** Stream transformations, independent of discipline.

    A filter's essence is a transformation from one stream to another
    (§3); which side holds the initiative is the discipline's business.
    A [Transform.t] is written in the natural "loop" style — call [next]
    for input, [emit] for output, return at end of stream — and the
    {!Stage} builders wrap the same transform as a read-only, write-only
    or conventional filter Eject.  This separation is the reproduction's
    form of the paper's point that filters are pure transformers, not
    pumps. *)

module Value = Eden_kernel.Value

type next = unit -> Value.t option
(** Produces the next input item, [None] at end of stream. *)

type emit = Value.t -> unit

type t = next -> emit -> unit
(** Must consume input only via [next] and produce output only via
    [emit]; both may block.  Returning ends the output stream. *)

val identity : t
val map : (Value.t -> Value.t) -> t
val filter : (Value.t -> bool) -> t
val filter_map : (Value.t -> Value.t option) -> t

val stateful : init:'s -> step:('s -> Value.t -> 's * Value.t list) -> flush:('s -> Value.t list) -> t
(** Threaded-state transform: [step] maps each item to outputs, [flush]
    emits any tail when input ends (a paginator's last partial page). *)

val take : int -> t
(** First [n] items, then end of stream without draining the rest. *)

val drop : int -> t

val buffer_all : (Value.t list -> Value.t list) -> t
(** Reads the whole input, then emits [f items]; the shape of sorting
    filters.  Unavoidably unbounded memory, like sort(1). *)

val run_list : t -> Value.t list -> Value.t list
(** Pure, in-process execution for tests: feed a list, collect output. *)
