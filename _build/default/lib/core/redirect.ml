module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid
module Value = Eden_kernel.Value

let op_set_source = "SetSource"

let create k ?node ?(name = "redirector") ?(batch = 1) ~initial () =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name
    (fun ctx ~passive:_ ->
      (* The current connection, replaced wholesale on SetSource so
         buffered items from the old source are not mixed into the new
         stream.  [switched] marks that a redirection happened while the
         current source was (or went) dead, so its EOS must not
         propagate. *)
      let current = ref (Pull.connect ctx ~batch ~channel:(snd initial) (fst initial)) in
      let generation = ref 0 in
      let port = Port.create () in
      let w = Port.add_channel port ~capacity:0 Channel.output in
      Kernel.spawn_worker ctx ~name:(name ^ "/proxy") (fun () ->
          let rec pump my_generation =
            if !generation <> my_generation then
              (* A switch happened: abandon this source, follow the new
                 one. *)
              pump !generation
            else
              match Pull.read !current with
              | Some v ->
                  Port.write w v;
                  pump !generation
              | None ->
                  if !generation <> my_generation then pump !generation
                  else begin
                    (* True end of stream with no pending redirection:
                       wait briefly for a possible SetSource — in this
                       simulation, park until one arrives or close. *)
                    Port.close w
                  end
          in
          pump !generation);
      ( op_set_source,
        fun arg ->
          let u, c = Value.to_pair arg in
          current := Pull.connect ctx ~batch ~channel:(Channel.of_value c) (Value.to_uid u);
          incr generation;
          Value.Unit )
      :: Port.handlers port)

let set_source ctx ~redirector ?(channel = Channel.output) src =
  Value.to_unit
    (Kernel.call ctx redirector ~op:op_set_source
       (Value.pair (Value.Uid src) (Channel.to_value channel)))
