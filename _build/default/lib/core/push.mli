(** Active output: a client-side connection that writes to a remote
    Eject's channel by issuing [Deposit] invocations.

    The dual of {!Pull}: in the write-only discipline a producer knows
    where its output goes, while consumers never know who feeds them.
    Items accumulate locally until [batch] are pending, then travel in
    one [Deposit]; [close] flushes the remainder with the end-of-stream
    mark. *)

module Value = Eden_kernel.Value

type t

val connect :
  Eden_kernel.Kernel.ctx -> ?batch:int -> ?channel:Channel.t -> Eden_kernel.Uid.t -> t
(** @raise Invalid_argument if [batch < 1]. *)

val write : t -> Value.t -> unit
(** Queue one item, depositing when the batch fills.  The deposit blocks
    until the consumer accepts (back-pressure).  Fiber context only.
    @raise Failure after [close]. *)

val flush : t -> unit
(** Deposit any pending items immediately. *)

val close : t -> unit
(** Flush and send end of stream.  Idempotent. *)

val sink : t -> Eden_kernel.Uid.t
val channel : t -> Channel.t
val deposits_issued : t -> int
