module Value = Eden_kernel.Value

type next = unit -> Value.t option
type emit = Value.t -> unit
type t = next -> emit -> unit

let identity next emit =
  let rec go () =
    match next () with
    | Some v ->
        emit v;
        go ()
    | None -> ()
  in
  go ()

let map f next emit =
  let rec go () =
    match next () with
    | Some v ->
        emit (f v);
        go ()
    | None -> ()
  in
  go ()

let filter_map f next emit =
  let rec go () =
    match next () with
    | Some v ->
        (match f v with Some v' -> emit v' | None -> ());
        go ()
    | None -> ()
  in
  go ()

let filter pred = filter_map (fun v -> if pred v then Some v else None)

let stateful ~init ~step ~flush next emit =
  let rec go state =
    match next () with
    | Some v ->
        let state', outs = step state v in
        List.iter emit outs;
        go state'
    | None -> List.iter emit (flush state)
  in
  go init

let take n next emit =
  let rec go remaining =
    if remaining > 0 then
      match next () with
      | Some v ->
          emit v;
          go (remaining - 1)
      | None -> ()
  in
  go n

let drop n next emit =
  let rec skip remaining =
    if remaining > 0 then match next () with Some _ -> skip (remaining - 1) | None -> ()
  in
  skip n;
  identity next emit

let buffer_all f next emit =
  let rec collect acc =
    match next () with Some v -> collect (v :: acc) | None -> List.rev acc
  in
  let items = collect [] in
  List.iter emit (f items)

let run_list t items =
  let input = ref items in
  let output = ref [] in
  let next () =
    match !input with
    | [] -> None
    | x :: rest ->
        input := rest;
        Some x
  in
  let emit v = output := v :: !output in
  t next emit;
  List.rev !output
