module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

type t = {
  ctx : Kernel.ctx;
  src : Uid.t;
  chan : Channel.t;
  batch : int;
  mutable buf : Value.t list;
  mutable eos : bool;
  mutable transfers : int;
}

let connect ctx ?(batch = 1) ?(channel = Channel.output) src =
  if batch < 1 then invalid_arg "Pull.connect: batch must be at least 1";
  { ctx; src; chan = channel; batch; buf = []; eos = false; transfers = 0 }

let rec read t =
  match t.buf with
  | x :: rest ->
      t.buf <- rest;
      Some x
  | [] ->
      if t.eos then None
      else begin
        t.transfers <- t.transfers + 1;
        let reply =
          Kernel.call t.ctx t.src ~op:Proto.transfer_op
            (Proto.transfer_request t.chan ~credit:t.batch)
        in
        let { Proto.eos; items } = Proto.parse_transfer_reply reply in
        t.eos <- eos;
        t.buf <- items;
        (* A live producer never replies empty without eos, but retry
           defensively rather than fabricate an end of stream. *)
        read t
      end

let iter f t =
  let rec go () =
    match read t with
    | Some v ->
        f v;
        go ()
    | None -> ()
  in
  go ()

let source t = t.src
let channel t = t.chan
let transfers_issued t = t.transfers
