module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

(* --- Output ---------------------------------------------------------- *)

type out_stream = { w : Port.writer; line : Buffer.t; mutable out_closed : bool }

let attach_out w = { w; line = Buffer.create 80; out_closed = false }

let emit_line t =
  Port.write t.w (Value.Str (Buffer.contents t.line));
  Buffer.clear t.line

let output_char t c =
  if t.out_closed then failwith "Stdio.output_char: closed";
  if c = '\n' then emit_line t else Buffer.add_char t.line c

let output_string t s = String.iter (output_char t) s

let print_line t s =
  output_string t s;
  output_char t '\n'

let printf t fmt = Printf.ksprintf (print_line t) fmt

let close_out t =
  if not t.out_closed then begin
    t.out_closed <- true;
    if Buffer.length t.line > 0 then emit_line t;
    Port.close t.w
  end

(* --- Input ----------------------------------------------------------- *)

type in_stream = {
  pull : Pull.t;
  mutable pending : string option; (* a partially consumed line *)
  mutable pos : int; (* cursor into [pending] for input_char *)
  mutable newline_due : bool; (* the '\n' separating items *)
}

let attach_in pull = { pull; pending = None; pos = 0; newline_due = false }

let input_line t =
  match t.pending with
  | Some line ->
      (* A char-level reader left a partial line; hand back the rest. *)
      let rest = String.sub line t.pos (String.length line - t.pos) in
      t.pending <- None;
      t.pos <- 0;
      t.newline_due <- false;
      Some rest
  | None -> (
      match Pull.read t.pull with
      | Some v -> Some (Value.to_str v)
      | None -> None)

let input_char t =
  match t.pending with
  | Some line when t.pos < String.length line ->
      let c = line.[t.pos] in
      t.pos <- t.pos + 1;
      Some c
  | Some _ ->
      t.pending <- None;
      t.pos <- 0;
      t.newline_due <- false;
      Some '\n'
  | None -> (
      match Pull.read t.pull with
      | None -> None
      | Some v ->
          let line = Value.to_str v in
          if String.length line = 0 then Some '\n'
          else begin
            t.pending <- Some line;
            t.pos <- 1;
            t.newline_due <- true;
            Some line.[0]
          end)

let iter_lines f t =
  let rec go () =
    match input_line t with
    | Some l ->
        f l;
        go ()
    | None -> ()
  in
  go ()

(* --- The conventional filter ----------------------------------------- *)

let filter_ro k ?node ?(name = "stdio-filter") ?(capacity = 0) ?(batch = 1) ~upstream
    ?(upstream_channel = Channel.output) body =
  Kernel.create_eject k ?node ~dispatch:Kernel.Concurrent ~type_name:name
    (fun ctx ~passive:_ ->
      let port = Port.create () in
      let w = Port.add_channel port ~capacity Channel.output in
      let pull = Pull.connect ctx ~batch ~channel:upstream_channel upstream in
      Kernel.spawn_worker ctx ~name:(name ^ "/main") (fun () ->
          if capacity = 0 then Port.await_demand w;
          let stdin = attach_in pull in
          let stdout = attach_out w in
          body stdin stdout;
          close_out stdout);
      Port.handlers port)
