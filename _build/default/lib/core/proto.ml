module Value = Eden_kernel.Value

let transfer_op = "Transfer"
let deposit_op = "Deposit"

let transfer_request chan ~credit = Value.List [ Channel.to_value chan; Value.Int credit ]

let parse_transfer_request v =
  match v with
  | Value.List [ chan; Value.Int credit ] ->
      if credit <= 0 then raise (Value.Protocol_error "Transfer: credit must be positive");
      (Channel.of_value chan, credit)
  | v -> raise (Value.Protocol_error ("malformed Transfer request: " ^ Value.to_string v))

type transfer_reply = { eos : bool; items : Value.t list }

let transfer_reply { eos; items } = Value.List [ Value.Bool eos; Value.List items ]

let parse_transfer_reply v =
  match v with
  | Value.List [ Value.Bool eos; Value.List items ] -> { eos; items }
  | v -> raise (Value.Protocol_error ("malformed Transfer reply: " ^ Value.to_string v))

let deposit_request chan ~eos items =
  Value.List [ Channel.to_value chan; Value.Bool eos; Value.List items ]

let parse_deposit_request v =
  match v with
  | Value.List [ chan; Value.Bool eos; Value.List items ] -> (Channel.of_value chan, eos, items)
  | v -> raise (Value.Protocol_error ("malformed Deposit request: " ^ Value.to_string v))
