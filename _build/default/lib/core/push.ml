module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

type t = {
  ctx : Kernel.ctx;
  dst : Uid.t;
  chan : Channel.t;
  batch : int;
  mutable pending : Value.t list; (* reversed *)
  mutable closed : bool;
  mutable deposits : int;
}

let connect ctx ?(batch = 1) ?(channel = Channel.output) dst =
  if batch < 1 then invalid_arg "Push.connect: batch must be at least 1";
  { ctx; dst; chan = channel; batch; pending = []; closed = false; deposits = 0 }

let send t ~eos items =
  t.deposits <- t.deposits + 1;
  ignore
    (Kernel.call t.ctx t.dst ~op:Proto.deposit_op (Proto.deposit_request t.chan ~eos items))

let flush t =
  match t.pending with
  | [] -> ()
  | pending ->
      t.pending <- [];
      send t ~eos:false (List.rev pending)

let write t item =
  if t.closed then failwith "Push.write: closed";
  t.pending <- item :: t.pending;
  if List.length t.pending >= t.batch then flush t

let close t =
  if not t.closed then begin
    t.closed <- true;
    let items = List.rev t.pending in
    t.pending <- [];
    send t ~eos:true items
  end

let sink t = t.dst
let channel t = t.chan
let deposits_issued t = t.deposits
