module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Waitq = Eden_sched.Waitq

type chan_state = {
  chan : Channel.t;
  items : Value.t Queue.t;
  capacity : int;
  mutable eos : bool;
  readers : Waitq.t; (* parked [read] callers *)
  writers : Waitq.t; (* parked Deposit handlers *)
}

type t = { channels : (Channel.t * chan_state) list ref }

type reader = chan_state

let create () = { channels = ref [] }

let add_channel t ?(capacity = 1) chan =
  if capacity < 1 then invalid_arg "Intake.add_channel: capacity must be at least 1";
  if List.exists (fun (c, _) -> Channel.equal c chan) !(t.channels) then
    invalid_arg ("Intake.add_channel: duplicate channel " ^ Channel.to_string chan);
  let s =
    {
      chan;
      items = Queue.create ();
      capacity;
      eos = false;
      readers = Waitq.create ("intake " ^ Channel.to_string chan ^ " readers");
      writers = Waitq.create ("intake " ^ Channel.to_string chan ^ " writers");
    }
  in
  t.channels := (chan, s) :: !(t.channels);
  s

let find t chan = List.find_opt (fun (c, _) -> Channel.equal c chan) !(t.channels)

let reader t chan = match find t chan with Some (_, s) -> s | None -> raise Not_found

let rec read s =
  match Queue.take_opt s.items with
  | Some x ->
      ignore (Waitq.wake_one s.writers);
      Some x
  | None ->
      if s.eos then None
      else begin
        Waitq.park s.readers;
        read s
      end

let eos_seen s = s.eos
let buffered s = Queue.length s.items

let serve_deposit t arg =
  let chan, eos, items = Proto.parse_deposit_request arg in
  match find t chan with
  | None -> raise (Kernel.Eden_error ("no such channel: " ^ Channel.to_string chan))
  | Some (_, s) ->
      if s.eos then raise (Kernel.Eden_error "Deposit after end of stream");
      let rec accept item =
        if Queue.length s.items < s.capacity then begin
          Queue.push item s.items;
          ignore (Waitq.wake_one s.readers)
        end
        else begin
          (* Buffer full: hold the depositor's reply hostage.  The
             invoker is blocked awaiting it, which is exactly the
             back-pressure the write-only discipline needs. *)
          Waitq.park s.writers;
          accept item
        end
      in
      List.iter accept items;
      if eos then begin
        s.eos <- true;
        ignore (Waitq.wake_all s.readers)
      end;
      Value.Unit

let handlers t = [ (Proto.deposit_op, serve_deposit t) ]
