(** Multi-stream plumbing Ejects built from the paper's primitives.

    §5 establishes that read-only transput has free fan-in, no fan-out,
    and that channel identifiers restore fan-out.  These are the
    resulting library components:

    - {!tee}: one upstream duplicated onto [m] output channels —
      read-only fan-out done the paper's way (each consumer is told its
      own channel).
    - {!merge}: [m] upstreams combined onto one output channel —
      read-only fan-in packaged as a stage.
    - {!split}: one upstream demultiplexed onto two channels by a
      predicate — the multi-output "impure filter", of which a
      report-emitting filter is the special case.
    - {!zip}: two upstreams paired item-by-item, ending with the
      shorter — only expressible at all because read-only consumers
      control {e when} each input advances. *)

module Value = Eden_kernel.Value
module Kernel = Eden_kernel.Kernel
module Uid = Eden_kernel.Uid

val tee :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  upstream:Uid.t ->
  ?upstream_channel:Channel.t ->
  channels:Channel.t list ->
  unit ->
  Uid.t
(** Every item is written to {e every} listed channel; a slow consumer
    therefore back-pressures the rest (capacity softens this).
    @raise Invalid_argument on an empty or duplicate channel list. *)

(** Merge policies: [Arrival] forwards items as their sources yield
    them (source order preserved within a source); [Round_robin] takes
    one item per source in turn, dropping exhausted sources out of the
    rotation. *)
type merge_policy = Arrival | Round_robin

val merge :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  ?policy:merge_policy ->
  upstreams:(Uid.t * Channel.t) list ->
  unit ->
  Uid.t
(** Output on {!Channel.output}; ends when all upstreams have ended.
    @raise Invalid_argument on an empty upstream list. *)

val split :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  upstream:Uid.t ->
  ?upstream_channel:Channel.t ->
  pred:(Value.t -> bool) ->
  accept:Channel.t ->
  reject:Channel.t ->
  unit ->
  Uid.t
(** Items satisfying [pred] go to [accept], the rest to [reject]; both
    channels need a consumer (or sufficient capacity) for the stage to
    drain. *)

val zip :
  Kernel.t ->
  ?node:Eden_net.Net.node_id ->
  ?name:string ->
  ?capacity:int ->
  ?batch:int ->
  left:Uid.t * Channel.t ->
  right:Uid.t * Channel.t ->
  unit ->
  Uid.t
(** Pairs [(l, r)] as {!Value.pair} on {!Channel.output}. *)
