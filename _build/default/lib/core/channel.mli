(** Channel identifiers (§5 of the paper).

    A multi-output Eject in the read-only discipline associates a
    channel identifier with each of its output streams; every [Transfer]
    request is qualified by one.  Two flavours exist:

    - [Num n] — ordinary integer identifiers, publishable in
      documentation, but forgeable: any Eject that can name you can read
      any numbered channel.
    - [Cap u] — capability identifiers.  Because {!Eden_kernel.Uid.t}
      values are unforgeable, only Ejects that were explicitly handed
      the capability can present it.  The cost is that whoever sets up a
      pipeline must first ask the filter for its channel UIDs (an extra
      connection-time invocation; measured in experiment T4). *)

type t = Num of int | Cap of Eden_kernel.Uid.t

val output : t
(** The conventional primary output, [Num 0]. *)

val report : t
(** The conventional report/monitoring stream, [Num 1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_value : t -> Eden_kernel.Value.t
val of_value : Eden_kernel.Value.t -> t
(** @raise Eden_kernel.Value.Protocol_error on a value that is not a
    channel. *)
